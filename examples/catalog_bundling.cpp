// Catalog bundling, measured: drives the multi-swarm CatalogEngine over a
// Zipf catalog under a chosen bundling policy, then reproduces the paper's
// Figure 3 tradeoff (download time vs bundle size K at two publisher
// availability levels) from simulation instead of closed forms.
//
// Usage:
//   catalog_bundling [--policy none|fixedk|greedy] [--k K] [--files N]
//                    [--alpha A] [--demand LAMBDA] [--horizon H] [--seed S]
//                    [--threads T] [--shared] [--partitioned] [--json]
//                    [--trace-swarm I --trace-out FILE] [--no-sweep]
//                    [--telemetry-out FILE] [--telemetry-interval SECONDS]
//                    [--telemetry-prom FILE] [--stop-ci TARGET]
//
// --shared runs every swarm multiplexed on one event queue (bit-identical
// to the default sharded-parallel mode); --trace-swarm writes one swarm's
// JSONL trace for replay with examples/trace_inspect.
//
// --telemetry-out streams periodic JSONL snapshots of the running catalog
// (watch them live with examples/telemetry_watch), --telemetry-prom keeps
// a Prometheus text-exposition file up to date, and --stop-ci enables an
// early-stop rule: the run ends once the 95% CI half-width of per-swarm
// arrival unavailability drops to the target (recorded in the report).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/bundling_policy.hpp"
#include "catalog/catalog.hpp"
#include "catalog/catalog_engine.hpp"
#include "catalog/report.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace {

struct Options {
    std::string policy = "fixedk";
    std::size_t k = 4;
    std::size_t files = 200;
    double alpha = 1.0;
    double demand = 200.0 / 60.0 / 10.0;  // ~1 request per 3 s across the catalog
    double horizon = 2.0e5;
    std::uint64_t seed = 42;
    std::size_t threads = 0;  // 0: SWARMAVAIL_THREADS / hardware concurrency
    bool shared_queue = false;
    bool partitioned = false;
    bool json = false;
    bool sweep = true;
    std::size_t trace_swarm = swarmavail::catalog::kNoTracedSwarm;
    std::string trace_out;
    std::string telemetry_out;
    std::string telemetry_prom;
    double telemetry_interval = 0.25;
    double stop_ci = 0.0;  // <= 0: no early stop
};

[[noreturn]] void usage_error(std::string_view message) {
    std::cerr << "catalog_bundling: " << message << "\n"
              << "  --policy none|fixedk|greedy   bundling policy (default fixedk)\n"
              << "  --k K                         bundle size (default 4)\n"
              << "  --files N                     catalog size (default 200)\n"
              << "  --alpha A                     Zipf exponent (default 1.0)\n"
              << "  --demand LAMBDA               aggregate request rate 1/s\n"
              << "  --horizon H                   simulated seconds (default 2e5)\n"
              << "  --seed S                      base seed (swarm i uses S+i)\n"
              << "  --threads T                   sharded worker count (0 = auto)\n"
              << "  --shared                      one shared event queue, one thread\n"
              << "  --partitioned                 split publisher budget over swarms\n"
              << "  --json                        dump the full report as JSON\n"
              << "  --trace-swarm I               trace swarm I (JSONL)\n"
              << "  --trace-out FILE              trace destination (with --trace-swarm)\n"
              << "  --no-sweep                    skip the Figure-3-style K sweep\n"
              << "  --telemetry-out FILE          live JSONL snapshot stream\n"
              << "  --telemetry-interval SECONDS  snapshot period (default 0.25)\n"
              << "  --telemetry-prom FILE         Prometheus text-exposition file\n"
              << "  --stop-ci TARGET              stop once unavailability CI95 "
                 "half-width <= TARGET\n";
    std::exit(2);
}

Options parse_options(int argc, char** argv) {
    Options opt;
    auto value = [&](int& i) -> std::string_view {
        if (i + 1 >= argc) {
            usage_error(std::string{argv[i]} + " needs a value");
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--policy") {
            opt.policy = value(i);
        } else if (arg == "--k") {
            opt.k = std::stoul(std::string{value(i)});
        } else if (arg == "--files") {
            opt.files = std::stoul(std::string{value(i)});
        } else if (arg == "--alpha") {
            opt.alpha = std::stod(std::string{value(i)});
        } else if (arg == "--demand") {
            opt.demand = std::stod(std::string{value(i)});
        } else if (arg == "--horizon") {
            opt.horizon = std::stod(std::string{value(i)});
        } else if (arg == "--seed") {
            opt.seed = std::stoull(std::string{value(i)});
        } else if (arg == "--threads") {
            opt.threads = std::stoul(std::string{value(i)});
        } else if (arg == "--shared") {
            opt.shared_queue = true;
        } else if (arg == "--partitioned") {
            opt.partitioned = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--trace-swarm") {
            opt.trace_swarm = std::stoul(std::string{value(i)});
        } else if (arg == "--trace-out") {
            opt.trace_out = value(i);
        } else if (arg == "--no-sweep") {
            opt.sweep = false;
        } else if (arg == "--telemetry-out") {
            opt.telemetry_out = value(i);
        } else if (arg == "--telemetry-interval") {
            opt.telemetry_interval = std::stod(std::string{value(i)});
        } else if (arg == "--telemetry-prom") {
            opt.telemetry_prom = value(i);
        } else if (arg == "--stop-ci") {
            opt.stop_ci = std::stod(std::string{value(i)});
        } else if (arg == "--help" || arg == "-h") {
            usage_error("usage");
        } else {
            usage_error("unknown flag " + std::string{arg});
        }
    }
    return opt;
}

swarmavail::catalog::CatalogConfig catalog_config(const Options& opt) {
    swarmavail::catalog::CatalogConfig config;
    config.num_files = opt.files;
    config.zipf_exponent = opt.alpha;
    config.aggregate_demand = opt.demand;
    config.file_size = 4.0e6 * 8.0;          // 4 MB files
    config.download_rate = 50.0e3 * 8.0;     // 50 KBps effective swarm capacity
    config.publisher_arrival_rate = 1.0 / 900.0;  // seed returns every 15 min
    config.publisher_residence = 300.0;           // ... and stays 5 min
    config.publishers = opt.partitioned
                            ? swarmavail::catalog::PublisherAssignment::kPartitionedBudget
                            : swarmavail::catalog::PublisherAssignment::kDedicated;
    return config;
}

swarmavail::catalog::CatalogEngineConfig engine_config(const Options& opt) {
    swarmavail::catalog::CatalogEngineConfig config;
    config.horizon = opt.horizon;
    config.seed = opt.seed;
    config.execution = opt.shared_queue
                           ? swarmavail::catalog::ExecutionMode::kSharedQueue
                           : swarmavail::catalog::ExecutionMode::kSharded;
    config.policy.threads = opt.threads;
    return config;
}

void print_policy_run(const Options& opt) {
    using namespace swarmavail;
    const auto catalog = catalog::build_catalog(catalog_config(opt));
    const auto policy = catalog::make_policy(opt.policy, opt.k);
    auto config = engine_config(opt);

    // Optional live telemetry: JSONL snapshot stream and/or Prometheus
    // text-exposition file, sampled every --telemetry-interval seconds.
    std::ofstream telemetry_file;
    std::unique_ptr<telemetry::JsonlTelemetryExporter> jsonl_exporter;
    std::unique_ptr<telemetry::PrometheusTextExporter> prom_exporter;
    std::unique_ptr<telemetry::TelemetrySession> session;
    if (!opt.telemetry_out.empty() || !opt.telemetry_prom.empty()) {
        if (opt.telemetry_interval <= 0.0) {
            usage_error("--telemetry-interval must be > 0");
        }
        telemetry::TelemetryConfig telemetry_config;
        telemetry_config.interval_s = opt.telemetry_interval;
        if (!opt.telemetry_out.empty()) {
            telemetry_file.open(opt.telemetry_out);
            if (!telemetry_file) {
                usage_error("cannot open " + opt.telemetry_out);
            }
            jsonl_exporter =
                std::make_unique<telemetry::JsonlTelemetryExporter>(telemetry_file);
            telemetry_config.exporters.push_back(jsonl_exporter.get());
        }
        if (!opt.telemetry_prom.empty()) {
            prom_exporter = std::make_unique<telemetry::PrometheusTextExporter>(
                opt.telemetry_prom);
            telemetry_config.exporters.push_back(prom_exporter.get());
        }
        session = std::make_unique<telemetry::TelemetrySession>(
            std::move(telemetry_config));
        session->start();
        config.telemetry = session.get();
    }
    if (opt.stop_ci > 0.0) {
        if (opt.shared_queue) {
            usage_error("--stop-ci requires the sharded execution mode");
        }
        config.stop_rule = telemetry::StopRule{opt.stop_ci, 8};
    }

    std::ofstream trace_file;
    sim::Tracer* tracer = nullptr;
    // Optional single-swarm replay hook: the traced swarm's JSONL is
    // identical to tracing it in an isolated run (feed it to trace_inspect).
    std::unique_ptr<sim::JsonlTraceSink> sink;
    std::unique_ptr<sim::Tracer> owned_tracer;
    if (opt.trace_swarm != catalog::kNoTracedSwarm) {
        if (opt.trace_out.empty()) {
            usage_error("--trace-swarm needs --trace-out");
        }
        trace_file.open(opt.trace_out);
        if (!trace_file) {
            usage_error("cannot open " + opt.trace_out);
        }
        sink = std::make_unique<sim::JsonlTraceSink>(trace_file);
        owned_tracer = std::make_unique<sim::Tracer>(*sink);
        owned_tracer->set_enabled(true);
        tracer = owned_tracer.get();
        config.tracer = tracer;
        config.traced_swarm = opt.trace_swarm;
    }

    const auto report = catalog::run_catalog(catalog, *policy, config);
    if (session != nullptr) {
        session->stop();  // emits the final snapshot before we print
    }
    if (report.stopped_early && !opt.json) {
        std::cout << "stop rule fired: " << report.swarms.size() << " of "
                  << report.swarms_planned << " swarms ran (CI95 half-width <= "
                  << opt.stop_ci << ")\n\n";
    }
    if (owned_tracer != nullptr) {
        owned_tracer->flush();
        std::cout << "traced swarm " << opt.trace_swarm << " -> " << opt.trace_out
                  << " (" << owned_tracer->records_emitted() << " records)\n\n";
    }

    if (opt.json) {
        catalog::write_json(report, std::cout);
        std::cout << "\n";
        return;
    }
    std::cout << "=== " << opt.files << "-file Zipf(" << opt.alpha
              << ") catalog, policy " << policy->name();
    if (opt.policy != "none") {
        std::cout << " (K = " << opt.k << ")";
    }
    std::cout << ", " << report.swarms.size() << " swarms ===\n\n";
    catalog::write_summary(report, std::cout);
}

// Figure 3, measured: mean download time vs K for two publisher
// availability levels (frequent vs rare seed visits). The paper's curves
// show an interior optimum K when seeds are rare.
void print_figure3_sweep(const Options& opt) {
    using namespace swarmavail;
    Options sweep_opt = opt;
    sweep_opt.files = 64;
    sweep_opt.demand = 64.0 / 240.0;  // 1/240 s^-1 per file

    std::cout << "\n=== Figure-3-style sweep: download time vs K (64 files, "
                 "FixedK, measured) ===\n\n";
    TableWriter table{{"K", "swarms",
                             "E[T] (s), 1/R = 900 s", "P(unavail), 1/R = 900 s",
                             "E[T] (s), 1/R = 7200 s", "P(unavail), 1/R = 7200 s"}};
    for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<std::string> row{std::to_string(k), ""};
        for (double interarrival : {900.0, 7200.0}) {
            auto config = catalog_config(sweep_opt);
            config.publisher_arrival_rate = 1.0 / interarrival;
            const auto catalog = catalog::build_catalog(config);
            const auto report = catalog::run_catalog(catalog, catalog::FixedK{k},
                                                     engine_config(sweep_opt));
            row[1] = std::to_string(report.swarms.size());
            row.push_back(format_double(report.mean_download_time, 6));
            row.push_back(
                format_double(report.demand_weighted_unavailability, 4));
        }
        table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "\nFrequent seeds (1/R = 900 s): bundling only adds transfer "
                 "time.\nRare seeds (1/R = 7200 s): availability gains first beat "
                 "the size cost,\nthen the K s / mu transfer term dominates — the "
                 "interior optimum of Figure 3.\n";
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_options(argc, argv);
    print_policy_run(opt);
    if (opt.sweep && !opt.json) {
        print_figure3_sweep(opt);
    }
    return 0;
}
