// Figure 1 — CDF of seed availability across monitored swarms.
//
// Paper: 45,693 swarms monitored >= 1 month over 7 months of PlanetLab
// scraping. Solid curve (first month after creation): <35% of swarms have a
// seed available all the time. Dotted curve (whole trace): ~80% of swarms
// are unavailable >= 80% of the time.
//
// Here: a synthetic catalog (1/10 scale) is pushed through the same
// monitoring + analysis pipeline; we print both CDFs.
#include <iostream>

#include "measurement/analysis.hpp"
#include "measurement/monitor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::measurement;

    print_banner(std::cout, "Figure 1: CDF of seed availability");

    CatalogConfig catalog_config;  // defaults: 1/10-scale category mix
    const auto catalog = generate_catalog(catalog_config);
    MonitorConfig monitor_config;
    monitor_config.duration_hours = 24 * 30 * 7;  // the paper's 7 months
    const auto traces = monitor_catalog(catalog, monitor_config);

    const auto first_month = availability_fractions(traces, 0, 24 * 30);
    const auto whole_trace =
        availability_fractions(traces, 0, monitor_config.duration_hours);

    const EmpiricalCdf cdf_month{first_month};
    const EmpiricalCdf cdf_whole{whole_trace};

    TableWriter table{{"seed availability a", "CDF first month P[A<=a]",
                       "CDF whole trace P[A<=a]"}};
    for (int i = 0; i <= 20; ++i) {
        const double a = static_cast<double>(i) / 20.0;
        table.add_row({format_double(a, 3), format_double(cdf_month(a), 4),
                       format_double(cdf_whole(a), 4)});
    }
    table.print(std::cout);

    std::size_t always_first = 0;
    for (double a : first_month) {
        always_first += a >= 0.999 ? 1 : 0;
    }
    std::size_t mostly_unavailable = 0;
    for (double a : whole_trace) {
        mostly_unavailable += a <= 0.2 ? 1 : 0;
    }
    std::cout << "\nswarms monitored: " << traces.size() << "\n";
    std::cout << "fraction always seeded in first month: "
              << static_cast<double>(always_first) /
                     static_cast<double>(first_month.size())
              << "   (paper: < 0.35)\n";
    std::cout << "fraction unavailable >= 80% of whole trace: "
              << static_cast<double>(mostly_unavailable) /
                     static_cast<double>(whole_trace.size())
              << "   (paper: ~ 0.80)\n";
    return 0;
}
