// Section 2.3.2 — bundled content is more available.
//
// Paper: 62% of plain book swarms had no seed on the snapshot day vs 36%
// for collections; mean downloads 2,578 (plain) vs 4,216 (collections).
// After subset analysis (the Garfield example: a seedless collection whose
// wider super-collection is seeded still delivers the content), effective
// collection unavailability drops to 210/841 = 25%.
#include <iostream>

#include "measurement/analysis.hpp"
#include "measurement/monitor.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::measurement;

    print_banner(std::cout, "Section 2.3.2: availability of bundled vs plain content");

    CatalogConfig catalog_config;
    catalog_config.book_swarms = 20000;  // enough collections for tight stats
    const auto catalog = generate_catalog(catalog_config);
    MonitorConfig monitor_config;
    monitor_config.duration_hours = 24 * 90;
    const auto traces = monitor_catalog(catalog, monitor_config);
    const std::uint32_t snapshot_hour = 24 * 60;  // a "May 6"-style snapshot day

    const auto collections = compare_availability(catalog, traces, Category::kBooks,
                                                  /*use_collections=*/true, snapshot_hour);
    const auto bundles = compare_availability(catalog, traces, Category::kBooks,
                                              /*use_collections=*/false, snapshot_hour);

    TableWriter table{{"book swarm class", "swarms", "seedless %", "mean downloads",
                       "paper seedless %"}};
    table.add_row({"plain (vs collections)", std::to_string(collections.plain_swarms),
                   format_double(100.0 * collections.plain_seedless_fraction(), 3),
                   format_double(collections.plain_mean_downloads, 4), "62"});
    table.add_row({"collections", std::to_string(collections.bundled_swarms),
                   format_double(100.0 * collections.bundled_seedless_fraction(), 3),
                   format_double(collections.bundled_mean_downloads, 4), "36"});
    table.add_row({"plain (vs ext. bundles)", std::to_string(bundles.plain_swarms),
                   format_double(100.0 * bundles.plain_seedless_fraction(), 3),
                   format_double(bundles.plain_mean_downloads, 4), "-"});
    table.add_row({"extension bundles", std::to_string(bundles.bundled_swarms),
                   format_double(100.0 * bundles.bundled_seedless_fraction(), 3),
                   format_double(bundles.bundled_mean_downloads, 4), "-"});
    table.print(std::cout);

    const auto subsets = analyze_collection_subsets(catalog, traces, snapshot_hour);
    std::cout << "\ncollection subset analysis (the Garfield effect):\n";
    std::cout << "  collections: " << subsets.collections
              << "  seedless: " << subsets.seedless
              << "  seedless without a seeded superset: "
              << subsets.seedless_without_superset << "\n";
    std::cout << "  effective unavailability: " << subsets.effective_unavailability()
              << "   (paper: 0.25, down from the raw seedless fraction)\n";
    return 0;
}
