// Figure 2 — busy/idle period structure of a swarm.
//
// The paper's Figure 2 is an illustration: a swarm alternates busy periods
// (publisher online, or coverage above the threshold m) and idle periods.
// This bench runs the flow-level simulator at the Section 3 parameters and
// prints the measured busy/idle statistics next to the eq. 9 / renewal
// predictions, plus a sample of the alternating timeline.
#include <iostream>

#include "model/availability.hpp"
#include "sim/availability_sim.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;

    print_banner(std::cout, "Figure 2: busy and idle periods (flow-level simulation)");

    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;

    sim::AvailabilitySimConfig config;
    config.params = params;
    config.coverage_threshold = 3;  // Figure 2's illustrated threshold
    // Impatient peers so the measured busy periods match eq. 9's renewal
    // assumptions (patient mode would inject the accumulated waiting group
    // into each busy period, which the model deliberately neglects).
    config.patient_peers = false;
    config.horizon = 2.0e6;
    config.seed = 2;
    const auto result = run_availability_sim(config);

    const auto model = model::availability_impatient(params);

    TableWriter table{{"quantity", "simulated", "model"}};
    table.add_row({"mean busy period E[B] (s)",
                   format_double(result.busy_periods.mean(), 5),
                   format_double(model.busy_period, 5) + " (eq. 9, m=1)"});
    table.add_row({"mean idle period (s)", format_double(result.idle_periods.mean(), 5),
                   format_double(model.idle_period, 5) + " (1/r)"});
    table.add_row({"unavailable time fraction",
                   format_double(result.unavailable_time_fraction, 4),
                   format_double(model.unavailability, 4)});
    table.add_row({"peers served per busy period",
                   format_double(result.peers_per_busy_period.mean(), 5),
                   format_double(model.peers_per_busy_period, 5)});
    table.print(std::cout);

    std::cout << "\nbusy periods observed: " << result.busy_periods.count()
              << ", idle periods: " << result.idle_periods.count() << "\n";
    std::cout << "peers: " << result.arrivals << " arrived, " << result.served
              << " served, " << result.stranded
              << " interrupted mid-download (Figure 2's dotted lines)\n";
    return 0;
}
