// Theorem 3.1 / Lemma 3.1 — bundling K files cuts unavailability by
// e^{-Theta(K^2)}.
//
// Paper (Section 3.2-3.3): log E[B] and -log P grow as Theta(K^2) even when
// the bundle's publisher process is no better than a single file's
// (R = r, U = u). This bench prints the growth diagnostics and the fitted
// K^2 coefficient, which approaches the per-file offered load lambda s/mu.
#include <iostream>

#include "model/asymptotics.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::model;

    print_banner(std::cout, "Theorem 3.1: e^{-Theta(K^2)} unavailability scaling");

    SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;

    for (const auto scaling :
         {PublisherScaling::kConstant, PublisherScaling::kProportional}) {
        std::cout << (scaling == PublisherScaling::kConstant
                          ? "\npublisher scaling: constant (R = r, U = u)\n"
                          : "\npublisher scaling: proportional (R = Kr, U = Ku)\n");
        const auto points = growth_diagnostics(params, 14, scaling);
        TableWriter table{{"K", "log E[B]", "-log P", "log E[B] / K^2", "-log P / K^2"}};
        for (const auto& point : points) {
            table.add_row({std::to_string(point.k),
                           format_double(point.log_busy_period, 5),
                           format_double(point.neg_log_unavailability, 5),
                           format_double(point.busy_ratio, 5),
                           format_double(point.unavail_ratio, 5)});
        }
        table.print(std::cout);
        if (scaling == PublisherScaling::kConstant) {
            std::cout << "fitted K^2 coefficient of log E[B]: "
                      << fitted_k2_coefficient(points)
                      << "   (theory: lambda s / mu = " << params.offered_load()
                      << ")\n";
        }
    }
    std::cout << "\nratios stabilizing => Theta(K^2); the paper's availability\n"
                 "theorem holds under both publisher scalings.\n";
    return 0;
}
