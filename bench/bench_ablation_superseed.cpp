// Ablation — publisher super-seeding (mainline's "initial seeding" mode).
//
// The paper's seedless-swarm experiment (Figure 4) depends on how well the
// publisher's single copy spreads before it leaves. Super-seeding withholds
// pieces that already have peer holders, so the publisher's bandwidth goes
// entirely to fresh pieces. This bench repeats the Figure 4 setup with and
// without super-seeding around the self-sustainability boundary.
#include <iostream>
#include <memory>

#include "swarm/observables.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::swarm;

    print_banner(std::cout, "Ablation: publisher super-seeding (Figure 4 setup)");

    SwarmSimConfig config;
    config.peer_arrival_rate = 1.0 / 150.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(33.0 * kKBps);
    config.publisher_capacity = 50.0 * kKBps;
    config.publisher = PublisherBehavior::kLeaveAfterFirstCompletion;
    config.horizon = 1500.0;
    config.seed = 77;

    TableWriter table{{"K", "super-seeding", "served (5 runs)", "last completion (s)",
                       "available fraction"}};
    for (std::size_t k : {2, 3, 4, 5, 6}) {
        for (const bool super : {false, true}) {
            config.bundle_size = k;
            config.super_seeding = super;
            std::uint64_t served = 0;
            double last = 0.0;
            double avail = 0.0;
            const auto runs = run_swarm_replications(config, 5);
            for (const auto& run : runs) {
                served += run.completions;
                last = std::max(last, run.last_completion);
                avail += run.available_fraction / 5.0;
            }
            table.add_row({std::to_string(k), super ? "on" : "off",
                           std::to_string(served), format_double(last, 5),
                           format_double(avail, 3)});
        }
    }
    table.print(std::cout);

    std::cout << "\nreading: super-seeding spreads the single copy across more\n"
                 "peers before the publisher departs, moving the\n"
                 "self-sustainability boundary to smaller K -- a cheap lever the\n"
                 "paper's future-work discussion gestures at (replication of\n"
                 "rare content increases durability).\n";
    return 0;
}
