// Figure 3 — bundles may reduce download time (model evaluation).
//
// Paper: eqs. (11) and (9) evaluated for eleven publisher interarrival
// times. For 1/R in [500, 1100] the optimal bundle size is K = 3; for the
// remaining four (smaller 1/R) K = 1 is best; benefits grow as R falls.
//
// The figure legend's exact parameters are not recoverable from the text;
// the values below were calibrated so the reported optima match exactly
// (see EXPERIMENTS.md).
#include <iostream>

#include "model/bundling.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::model;

    print_banner(std::cout, "Figure 3: E[T] vs bundle size K (eq. 11 over eq. 9)");

    SwarmParams params;
    params.peer_arrival_rate = 1.0 / 120.0;  // calibrated legend values
    params.content_size = 80.0;              // s/mu = 80 s
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;  // overwritten per curve
    params.publisher_residence = 400.0;

    const std::vector<double> interarrivals{100.0, 200.0, 300.0, 400.0,  500.0, 600.0,
                                            700.0, 800.0, 900.0, 1000.0, 1100.0};
    const std::size_t max_k = 8;
    const auto curves = figure3_curves(params, interarrivals, max_k);

    std::vector<std::string> header{"1/R (s)"};
    for (std::size_t k = 1; k <= max_k; ++k) {
        header.push_back("E[T] K=" + std::to_string(k));
    }
    header.push_back("opt K");
    header.push_back("paper opt K");
    TableWriter table{header};
    for (const auto& curve : curves) {
        std::vector<std::string> row{format_double(curve.publisher_interarrival, 5)};
        for (const auto& point : curve.points) {
            row.push_back(format_double(point.download_time, 5));
        }
        row.push_back(std::to_string(curve.optimal_k));
        row.push_back(curve.publisher_interarrival >= 500.0 ? "3" : "1");
        table.add_row(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nlambda = 1/120 /s, s/mu = 80 s, u = 400 s (calibrated; legend\n"
                 "unreadable in the source). Shape checks: interior minimum for\n"
                 "1/R >= 500; gains grow with 1/R.\n";
    return 0;
}
