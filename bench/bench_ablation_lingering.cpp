// Ablation — altruistic lingering (Section 3.3.4).
//
// Peers staying online for a mean 1/gamma after completing substitute for
// bundling: both stretch busy periods. This bench sweeps the lingering
// time, validates the model variant against simulation, and evaluates
// eq. 15's bundling-vs-lingering parity for an unpopular/popular file pair.
#include <iostream>

#include "model/lingering.hpp"
#include "sim/availability_sim.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;

    print_banner(std::cout, "Ablation: altruistic lingering (Section 3.3.4)");

    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;

    TableWriter table{{"linger 1/gamma (s)", "model P", "sim P", "model E[T]",
                       "sim E[T]"}};
    for (double linger : {0.0, 30.0, 60.0, 120.0, 240.0, 480.0}) {
        const auto model_result = model::download_time_lingering(params, linger);

        sim::AvailabilitySimConfig config;
        config.params = params;
        config.patient_peers = true;
        config.linger_time = linger;
        config.horizon = 2.0e6;
        config.seed = 37;
        const auto sim_result = run_availability_sim(config);

        table.add_row({format_double(linger, 4),
                       format_double(model_result.unavailability, 4),
                       format_double(sim_result.arrival_unavailability, 4),
                       format_double(model_result.download_time, 5),
                       format_double(sim_result.download_times.mean(), 5)});
    }
    table.print(std::cout);

    std::cout << "\neq. 15: lingering needed to match bundling for an unpopular\n"
                 "file 1 (s1 = 10 s, lambda1) bundled with a popular file 2\n"
                 "(s2 = 400 s, lambda2 = 0.1):\n";
    TableWriter parity{{"lambda1", "parity 1/gamma (s)", "residence with lingering (s)",
                        "bundle download (s)"}};
    for (double lambda1 : {0.01, 0.001, 0.0001}) {
        parity.add_row(
            {format_double(lambda1, 4),
             format_double(model::lingering_time_for_bundle_parity(10.0, 400.0, lambda1,
                                                                   0.1, 1.0),
                           5),
             format_double(
                 model::residence_with_parity_lingering(10.0, 400.0, lambda1, 0.1, 1.0),
                 5),
             format_double(model::bundle_download_time(10.0, 400.0, 1.0), 5)});
    }
    parity.print(std::cout);
    std::cout << "\n(paper: the lingering needed diverges as lambda1 -> 0, while the\n"
                 " bundle gives file-1 peers file-2 availability at a fixed cost)\n";
    return 0;
}
