// Phase-profile bench: runs the availability and swarm simulators with the
// phase profiler enabled and prints the per-phase wall-time breakdown as
// JSON. scripts/bench.sh embeds this under the "phase_profile" key of
// BENCH_perf.json so the perf trajectory records where simulator time goes
// (event dispatch vs choke pump vs piece transfers vs busy-period
// bookkeeping), not just end-to-end throughput.
#include <iostream>
#include <memory>

#include "sim/availability_sim.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/profile.hpp"

int main() {
    using namespace swarmavail;

    prof::Profiler::reset();
    prof::Profiler::set_enabled(true);

    {
        sim::AvailabilitySimConfig config;
        config.params.peer_arrival_rate = 1.0 / 60.0;
        config.params.content_size = 80.0;
        config.params.download_rate = 1.0;
        config.params.publisher_arrival_rate = 1.0 / 900.0;
        config.params.publisher_residence = 300.0;
        config.horizon = 200000.0;
        config.seed = 3;
        (void)sim::run_availability_sim(config);
    }
    {
        swarm::SwarmSimConfig config;
        config.bundle_size = 4;
        config.peer_arrival_rate = 1.0 / 60.0;
        config.peer_capacity =
            std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
        config.publisher_capacity = 100.0 * swarm::kKBps;
        config.publisher = swarm::PublisherBehavior::kOnOff;
        config.horizon = 4800.0;
        config.seed = 4;
        (void)swarm::run_swarm_sim(config);
    }
    {
        // Parallel replications exercise the worker-loop phase.
        swarm::SwarmSimConfig config;
        config.bundle_size = 2;
        config.peer_arrival_rate = 1.0 / 60.0;
        config.peer_capacity =
            std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
        config.publisher_capacity = 100.0 * swarm::kKBps;
        config.horizon = 1200.0;
        config.seed = 5;
        (void)swarm::run_swarm_replications(config, 4, sim::ParallelPolicy{2});
    }

    prof::Profiler::set_enabled(false);
    prof::Profiler::write_json(std::cout);
    std::cout << "\n";
    return 0;
}
