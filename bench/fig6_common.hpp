// Shared harness for the Figure 6 experiments: sweep the bundle size K
// under an intermittent publisher and report download-time statistics.
//
// The protocol mirrors the paper's "10 runs of 1200 s" per K: arrivals stop
// at 1200 s and each run drains for at most another 1200 s so blocked peers
// get a bounded chance to finish (on the testbed, peers alive at the end of
// a run were torn down; completions beyond the window were unobservable).
// This bounding is what keeps the K=1..3 means on the paper's scale -- the
// true unbounded waits of a barely-available swarm are far longer, which
// the bench_ablation_threshold/bench_fig2 harnesses quantify separately.
#pragma once

#include <iostream>
#include <memory>

#include "swarm/swarm_sim.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace swarmavail::bench {

struct Fig6Row {
    std::size_t k = 0;
    SampleSet download_times;
};

/// Runs the Figure 6 sweep for K = 1..max_k with the given capacity source.
inline std::vector<Fig6Row> run_fig6_sweep(
    const std::shared_ptr<const swarm::CapacityDistribution>& capacity,
    std::size_t max_k, double peer_arrival_rate, std::uint64_t seed,
    bool reciprocity_cap = false) {
    std::vector<Fig6Row> rows;
    for (std::size_t k = 1; k <= max_k; ++k) {
        swarm::SwarmSimConfig config;
        config.bundle_size = k;
        config.peer_arrival_rate = peer_arrival_rate;
        config.peer_capacity = capacity;
        config.publisher_capacity = 100.0 * swarm::kKBps;
        config.publisher = swarm::PublisherBehavior::kOnOff;
        config.publisher_on_mean = 300.0;
        config.publisher_off_mean = 900.0;
        config.horizon = 1200.0;
        config.reciprocity_cap = reciprocity_cap;
        config.drain_after_horizon = true;
        config.drain_deadline_factor = 3.0;

        Fig6Row row;
        row.k = k;
        for (std::uint64_t replicate = 0; replicate < 20; ++replicate) {
            auto run_config = config;
            run_config.seed = seed + k + 1000 * replicate;
            const auto result = swarm::run_swarm_sim(run_config);
            for (const auto& peer : result.peers) {
                if (peer.completion >= 0.0) {
                    row.download_times.add(peer.completion - peer.arrival);
                }
            }
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/// Prints the per-K download-time table (mean/median/quartiles, as in the
/// paper's error-bar plot).
inline void print_fig6_table(const std::vector<Fig6Row>& rows,
                             const std::vector<double>& model_prediction) {
    TableWriter table{{"K", "n", "mean T (s)", "median", "p25", "p75", "p95", "stddev",
                       "model eq. 16"}};
    std::size_t best_k = 0;
    double best_mean = 1e300;
    for (const auto& row : rows) {
        const auto& s = row.download_times;
        if (!s.empty() && s.mean() < best_mean) {
            best_mean = s.mean();
            best_k = row.k;
        }
        const std::string model_cell =
            row.k <= model_prediction.size()
                ? format_double(model_prediction[row.k - 1], 5)
                : "-";
        table.add_row({std::to_string(row.k), std::to_string(s.size()),
                       s.empty() ? "-" : format_double(s.mean(), 5),
                       s.empty() ? "-" : format_double(s.median(), 5),
                       s.empty() ? "-" : format_double(s.quantile(0.25), 5),
                       s.empty() ? "-" : format_double(s.quantile(0.75), 5),
                       s.empty() ? "-" : format_double(s.quantile(0.95), 5),
                       s.empty() ? "-" : format_double(s.stddev(), 5), model_cell});
    }
    table.print(std::cout);
    std::cout << "\nobserved optimal K = " << best_k << "\n";
}

}  // namespace swarmavail::bench
