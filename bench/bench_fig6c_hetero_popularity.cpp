// Figure 6(c) — heterogeneous file popularities: lambda_i = 1/(8 i) for
// i = 1..4; experiments 1-4 serve each file in isolation, experiment 5
// bundles all four (lambda = sum = 1/3.84).
//
// Paper: isolated download time grows as popularity falls (329 s for file 1,
// more for files 2-4); the bundle lands at 405 s -- worse than file 1 alone
// but better than files 2-4 alone. Bundling taxes the popular file and
// subsidizes the unpopular ones.
#include <iostream>
#include <memory>

#include "model/zipf_demand.hpp"
#include "swarm/observables.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/table.hpp"

namespace {

/// Runs one Figure 6(c) experiment: a swarm with aggregate arrival rate
/// `lambda` carrying `files` files of 4 MB each.
swarmavail::SampleSet run_experiment(double lambda, std::size_t files,
                                     std::uint64_t seed) {
    using namespace swarmavail::swarm;
    SwarmSimConfig config;
    config.bundle_size = files;
    // The harness scales demand by bundle_size internally; feed the per-file
    // rate so that bundle_size * rate equals the intended aggregate.
    config.peer_arrival_rate = lambda / static_cast<double>(files);
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(50.0 * kKBps);
    config.publisher_capacity = 100.0 * kKBps;
    config.publisher = PublisherBehavior::kOnOff;
    config.publisher_on_mean = 300.0;
    config.publisher_off_mean = 900.0;
    config.horizon = 1200.0;
    // Teardown latency: on the PlanetLab testbed, completed clients were
    // killed by the controller over ssh, leaving each an O(10 s) lingering
    // window as an unintended seed. Without it the popular isolated file
    // cannot self-sustain at all and the Figure 6(c) popularity gradient
    // washes out (see EXPERIMENTS.md).
    config.peers_linger = true;
    config.linger_mean = 30.0;
    config.drain_after_horizon = true;
    config.drain_deadline_factor = 3.0;
    config.seed = seed;

    // The paper's protocol: 10 independent 1200 s runs; peers still blocked
    // when a run tears down are unobservable.
    swarmavail::SampleSet samples;
    for (std::uint64_t replicate = 0; replicate < 20; ++replicate) {
        auto run_config = config;
        run_config.seed = seed + 1000 * replicate;
        const auto result = run_swarm_sim(run_config);
        for (const auto& peer : result.peers) {
            if (peer.completion >= 0.0) {
                samples.add(peer.completion - peer.arrival);
            }
        }
    }
    return samples;
}

}  // namespace

int main() {
    using namespace swarmavail;

    print_banner(std::cout, "Figure 6(c): heterogeneous popularities lambda_i = 1/(8i)");

    const std::vector<double> lambdas{1.0 / 8.0, 1.0 / 16.0, 1.0 / 24.0, 1.0 / 32.0};
    double aggregate = 0.0;
    for (double l : lambdas) {
        aggregate += l;
    }

    TableWriter table{{"experiment", "lambda (1/s)", "n", "mean T (s)", "median",
                       "p25", "p75", "paper mean"}};
    const std::vector<std::string> paper{"329", "> bundle", "> bundle", "> bundle"};
    std::vector<double> isolated_means;
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
        const auto samples = run_experiment(lambdas[i], 1, 60 + i);
        isolated_means.push_back(samples.mean());
        table.add_row({"file " + std::to_string(i + 1) + " isolated",
                       format_double(lambdas[i], 4), std::to_string(samples.size()),
                       format_double(samples.mean(), 5),
                       format_double(samples.median(), 5),
                       format_double(samples.quantile(0.25), 5),
                       format_double(samples.quantile(0.75), 5), paper[i]});
    }
    const auto bundle = run_experiment(aggregate, 4, 99);
    table.add_row({"bundle of 4", format_double(aggregate, 4),
                   std::to_string(bundle.size()), format_double(bundle.mean(), 5),
                   format_double(bundle.median(), 5),
                   format_double(bundle.quantile(0.25), 5),
                   format_double(bundle.quantile(0.75), 5), "405"});
    table.print(std::cout);

    std::cout << "\nchecks (paper's qualitative claims):\n";
    std::cout << "  bundle worse than file 1 alone:  "
              << (bundle.mean() > isolated_means[0] ? "yes" : "NO") << "\n";
    std::size_t helped = 0;
    for (std::size_t i = 1; i < isolated_means.size(); ++i) {
        helped += bundle.mean() < isolated_means[i] ? 1 : 0;
    }
    std::cout << "  bundle better than files 2-4 alone: " << helped << "/3\n";

    std::cout << "\nmodel-side comparison (patient-peer model, eq. 11):\n";
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    model::HeterogeneousDemandConfig config;
    config.lambdas = lambdas;
    config.single_publisher = false;
    TableWriter model_table{{"file", "isolated E[T]", "bundled E[T]", "gain"}};
    for (const auto& row : model::compare_isolated_vs_bundle(params, config)) {
        model_table.add_row({std::to_string(row.file),
                             format_double(row.isolated_time, 5),
                             format_double(row.bundled_time, 5),
                             format_double(row.gain, 5)});
    }
    model_table.print(std::cout);
    return 0;
}
