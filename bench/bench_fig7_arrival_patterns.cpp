// Figure 7 — typical peer arrival patterns of short-lived (new) and
// long-lived (old) swarms.
//
// Paper: a typical swarm in its first month shows a decaying flash crowd;
// a two-year-old swarm shows a low, steady trickle. The model applies to
// the latter (steady-rate) regime; 911 of the 1,155 "Lost" swarms were
// older than a month.
#include <iostream>

#include "measurement/arrival_patterns.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::measurement;

    print_banner(std::cout, "Figure 7: arrival patterns of new vs old swarms");

    Rng rng{2009};
    const double horizon_days = 30.0;
    const auto new_arrivals = new_swarm_arrivals(rng, 400.0, 5.0, horizon_days);
    const auto old_arrivals = old_swarm_arrivals(rng, 25.0, horizon_days);
    const auto new_daily = daily_counts(new_arrivals, horizon_days);
    const auto old_daily = daily_counts(old_arrivals, horizon_days);

    TableWriter table{{"day", "new swarm arrivals/day", "old swarm arrivals/day"}};
    for (std::size_t day = 0; day < new_daily.size(); ++day) {
        table.add_row({std::to_string(day + 1), std::to_string(new_daily[day]),
                       std::to_string(old_daily[day])});
    }
    table.print(std::cout);

    std::cout << "\ncoefficient of variation of daily counts:\n";
    std::cout << "  new swarm (flash crowd, decaying): " << count_variation(new_daily)
              << "\n";
    std::cout << "  old swarm (steady):                " << count_variation(old_daily)
              << "\n";
    std::cout << "(paper: old swarms show much less variation; the model's\n"
                 " steady-rate assumption fits them)\n";
    return 0;
}
