// Baseline comparison — Qiu-Srikant fluid model vs this paper's
// availability model vs the block-level simulator.
//
// Related Work: "A naive adaptation of the fluid model in [17] to bundles
// suggests strictly longer download times under bundling, whereas our model
// shows that bundling can decrease download times by improving
// availability." This bench makes the disagreement concrete on the
// Figure 6(a) scenario: the fluid baseline grows linearly in K and never
// predicts an interior optimum; the availability model and the simulator
// both place the optimum at moderate K.
#include <iostream>

#include "model/bundling.hpp"
#include "model/fluid_baseline.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::model;

    print_banner(std::cout,
                 "Baseline: Qiu-Srikant fluid model vs the availability model");

    // Figure 6(a) parameters, file-normalized for the fluid model:
    // mu = 50 KBps / 4 MB = 1/80 copies/s; seeds leave immediately
    // (gamma large); eta ~ 1.
    FluidParams fluid;
    fluid.lambda = 1.0 / 60.0;
    fluid.mu = 1.0 / 80.0;
    fluid.c = 1.0 / 20.0;  // download cap 200 KBps
    fluid.eta = 1.0;
    fluid.gamma = 1.0;  // selfish peers: seeds vanish almost instantly

    SwarmParams ours;
    ours.peer_arrival_rate = 1.0 / 60.0;
    ours.content_size = 80.0;
    ours.download_rate = 1.0;
    ours.publisher_arrival_rate = 1.0 / 900.0;
    ours.publisher_residence = 300.0;

    BundleSweepConfig config;
    config.max_k = 8;
    config.model = DownloadModel::kSinglePublisher;
    config.coverage_threshold = 9;
    const auto sweep = sweep_bundle_sizes(ours, config);

    TableWriter table{{"K", "fluid E[T] (s)", "availability model E[T] (s)",
                       "sim (Fig 6a mean, s)"}};
    // Representative simulator means from bench_fig6a (committed protocol).
    const std::vector<std::string> sim{"717", "1019", "779", "627",
                                       "789", "886",  "863", "1259"};
    for (std::size_t k = 1; k <= 8; ++k) {
        table.add_row({std::to_string(k),
                       format_double(fluid_bundle_download_time(fluid, k), 5),
                       format_double(sweep[k - 1].download_time, 5),
                       k <= sim.size() ? sim[k - 1] : "-"});
    }
    table.print(std::cout);

    std::cout << "\nreading: the fluid baseline is availability-blind -- its state\n"
                 "space assumes the swarm never empties -- so bundling only\n"
                 "multiplies work and T grows ~K with no interior optimum. The\n"
                 "availability model and the simulator both show the crossover\n"
                 "the paper reports (T falls until the bundle bridges publisher\n"
                 "downtime, then grows).\n";
    return 0;
}
