// Figure 4 — availability of seedless swarms and the bundle-size tradeoff.
//
// Paper setup: lambda = 1/150 peers/s per file, s = 4 MB, mu = 33 KBps,
// publisher capacity 50 KBps; the publisher leaves forever once the first
// peer completes. For K in {1,2,4} only a handful of further peers complete
// before pieces disappear; for K in {6,8,10} completions grow linearly
// (self-sustaining). B(m=9) from eq. 13 explains the boundary, and the
// paper notes K=10's download time is ~66% above K=6's.
#include <iostream>
#include <memory>

#include "queueing/busy_period.hpp"
#include "swarm/observables.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::swarm;

    print_banner(std::cout, "Figure 4: seedless swarms (publisher leaves after 1st copy)");

    const double service_per_file = 4000.0 / 33.0;  // s/mu in seconds
    TableWriter model_table{{"K", "B(m=9) from eq. 13 (s)", "self-sustaining @1500s?"}};
    for (std::size_t k : {1, 2, 3, 4, 5, 6, 8, 10}) {
        const double bm = queueing::steady_state_residual_busy_period(
            9, {static_cast<double>(k) / 150.0,
                static_cast<double>(k) * service_per_file});
        model_table.add_row({std::to_string(k), format_double(bm, 5),
                             bm > 1500.0 ? "yes" : "no"});
    }
    std::cout << "model (eq. 13), paper reports (0, 0, 47, 569, 2816, 8835, ...):\n";
    model_table.print(std::cout);

    std::cout << "\nblock-level simulation, 5 runs x 1500 s per K:\n";
    TableWriter sim_table{{"K", "arrivals", "served", "served t<=750s", "served t<=1500s",
                           "last completion (s)", "mean T (s)"}};
    SwarmSimConfig config;
    config.file_size = 4.0e6 * 8.0;
    config.peer_arrival_rate = 1.0 / 150.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(33.0 * kKBps);
    config.publisher_capacity = 50.0 * kKBps;
    config.publisher = PublisherBehavior::kLeaveAfterFirstCompletion;
    config.horizon = 1500.0;
    config.seed = 7;

    double t_k6 = 0.0;
    double t_k10 = 0.0;
    for (std::size_t k : {1, 2, 4, 6, 8, 10}) {
        config.bundle_size = k;
        const auto runs = run_swarm_replications(config, 5);
        std::uint64_t arrivals = 0;
        std::uint64_t served = 0;
        std::size_t at_750 = 0;
        std::size_t at_1500 = 0;
        double last = 0.0;
        const auto merged = merge_download_times(runs);
        for (const auto& run : runs) {
            arrivals += run.arrivals;
            served += run.completions;
            const auto counts =
                completions_over_time(run.completion_times, {750.0, 1500.0});
            at_750 += counts[0];
            at_1500 += counts[1];
            last = std::max(last, run.last_completion);
        }
        const double mean_t = merged.empty() ? 0.0 : merged.mean();
        if (k == 6) {
            t_k6 = mean_t;
        }
        if (k == 10) {
            t_k10 = mean_t;
        }
        sim_table.add_row({std::to_string(k), std::to_string(arrivals),
                           std::to_string(served), std::to_string(at_750),
                           std::to_string(at_1500), format_double(last, 5),
                           format_double(mean_t, 5)});
    }
    sim_table.print(std::cout);

    if (t_k6 > 0.0) {
        std::cout << "\nmean T(K=10) / mean T(K=6) = " << t_k10 / t_k6
                  << "   (paper: ~1.66 -- bundling beyond the availability\n"
                     "    gap only inflates service time)\n";
    }
    return 0;
}
