// Section 5 — mixed vs pure bundling economics.
//
// Paper: "Even a small fraction of users opting to download more content
// than they strictly sought can significantly improve availability."
// This bench sweeps the opt-in fraction q of a mixed-bundling deployment
// (individual torrents + a bundle torrent) and reports per-file and
// aggregate unavailability, pure bundling (q = 1) and isolated swarms
// (q = 0) as the endpoints.
#include <iostream>

#include "model/mixed_bundling.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::model;

    print_banner(std::cout, "Section 5: mixed bundling -- availability vs opt-in fraction");

    SwarmParams base;
    base.peer_arrival_rate = 1.0;  // per-file demands below
    base.content_size = 80.0;
    base.download_rate = 1.0;
    base.publisher_arrival_rate = 1.0 / 900.0;
    base.publisher_residence = 300.0;

    MixedBundlingConfig config;
    config.lambdas = {1.0 / 60.0, 1.0 / 120.0, 1.0 / 240.0, 1.0 / 480.0};

    TableWriter table{{"opt-in q", "P bundle swarm", "P file 1 (popular)",
                       "P file 4 (unpopular)", "aggregate request P",
                       "E[T] single-file peer (file 4)"}};
    for (double q : {0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
        config.bundle_opt_in = q;
        const auto rows = evaluate_mixed_bundling(base, config);
        table.add_row({format_double(q, 3), format_double(rows.front().p_bundle, 4),
                       format_double(rows.front().p_mixed, 4),
                       format_double(rows.back().p_mixed, 4),
                       format_double(request_unavailability(rows, q), 4),
                       format_double(rows.back().download_time_single, 5)});
    }
    table.print(std::cout);

    std::cout << "\nreading: by q ~ 0.1-0.2 the bundle swarm is already nearly\n"
                 "self-sustaining and every file's unavailability collapses --\n"
                 "the individual swarms keep serving impatient majorities while\n"
                 "the bundle provides the availability backstop. Pure bundling\n"
                 "(q = 1) maximizes availability but forces the full download\n"
                 "cost on everyone.\n";
    return 0;
}
