// Figure 6(a) — mean download time vs bundle size, homogeneous capacities,
// plus the Section 4.3.1 model validation (eq. 16).
//
// Paper: lambda = 1/60 /s per file, mu = 50 KBps, publisher 100 KBps on/off
// 300 s / 900 s. K=1,2: large mean and variance (waiting dominates); the
// optimum is K=4; beyond that downloads grow ~linearly in K with shrinking
// variance. The model (eq. 16 with s/mu = 80 s, m = 9) predicts optimum
// K=5 and the right curve shape.
#include <iostream>
#include <memory>

#include "fig6_common.hpp"
#include "model/bundling.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::bench;

    print_banner(std::cout,
                 "Figure 6(a): download time vs K, homogeneous mu = 50 KBps");

    // Model prediction via eq. 16 (Section 4.3.1 parameters).
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    model::BundleSweepConfig model_config;
    model_config.max_k = 8;
    model_config.model = model::DownloadModel::kSinglePublisher;
    model_config.coverage_threshold = 9;
    const auto model_sweep = model::sweep_bundle_sizes(params, model_config);
    std::vector<double> model_prediction;
    for (const auto& point : model_sweep) {
        model_prediction.push_back(point.download_time);
    }

    const auto capacity =
        std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
    const auto rows = run_fig6_sweep(capacity, 8, 1.0 / 60.0, 20);
    print_fig6_table(rows, model_prediction);

    std::cout << "model (eq. 16, m=9) optimal K = "
              << model::optimal_bundle_size(model_sweep)
              << "   (paper: model 5, experiment 4)\n";
    return 0;
}
