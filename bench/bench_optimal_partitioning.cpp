// Future work (Section 5) — how should a publisher optimally bundle files?
//
// The paper poses but does not solve the catalog-partitioning problem. This
// bench applies the Section 3 model inside a partition optimizer: a catalog
// with Zipf demand is split into bundles minimizing the demand-weighted
// mean download time, with an optional per-extra-file traffic penalty (the
// ISP-cost concern the paper also raises).
#include <iostream>

#include "model/partitioning.hpp"
#include "model/zipf_demand.hpp"
#include "util/table.hpp"

namespace {

using namespace swarmavail;
using namespace swarmavail::model;

std::string render(const Partition& partition) {
    std::string out;
    for (const auto& bundle : partition) {
        out += "{";
        for (std::size_t i = 0; i < bundle.size(); ++i) {
            out += std::to_string(bundle[i] + 1);
            if (i + 1 < bundle.size()) {
                out += ",";
            }
        }
        out += "} ";
    }
    return out;
}

}  // namespace

int main() {
    using namespace swarmavail::model;

    swarmavail::print_banner(std::cout,
                             "Future work: optimal catalog partitioning into bundles");

    SwarmParams base;
    base.peer_arrival_rate = 1.0;
    base.content_size = 80.0;
    base.download_rate = 1.0;
    base.publisher_arrival_rate = 1.0 / 900.0;
    base.publisher_residence = 300.0;

    // A 12-file catalog with Zipf(1.1) demand, total one request per 20 s.
    const auto popularity = zipf_popularities(12, 1.1);
    PartitionConfig config;
    for (double p : popularity) {
        config.lambdas.push_back(p * 0.05);
    }

    swarmavail::TableWriter table{
        {"traffic penalty (s/file)", "optimal partition (files by rank)",
         "weighted E[T] (s)", "vs all-solo", "vs one-bundle"}};
    Partition all_solo;
    Partition one_bundle(1);
    for (std::size_t i = 0; i < config.lambdas.size(); ++i) {
        all_solo.push_back({i});
        one_bundle[0].push_back(i);
    }
    for (double penalty : {0.0, 40.0, 160.0}) {
        config.per_extra_file_penalty = penalty;
        const auto partition = optimal_partition_contiguous(base, config);
        const double cost = partition_cost(base, partition, config);
        table.add_row({swarmavail::format_double(penalty, 4), render(partition),
                       swarmavail::format_double(cost, 5),
                       swarmavail::format_double(
                           partition_cost(base, all_solo, config) / cost, 3) +
                           "x",
                       swarmavail::format_double(
                           partition_cost(base, one_bundle, config) / cost, 3) +
                           "x"});
    }
    table.print(std::cout);

    std::cout << "\nreading: the optimizer leaves the popular head solo (it is\n"
                 "already self-sustaining), glues the unpopular tail into larger\n"
                 "bundles whose pooled demand bridges publisher downtime, and\n"
                 "shrinks bundles as the traffic penalty grows -- quantifying the\n"
                 "paper's closing intuition about what makes good bundles.\n";
    return 0;
}
