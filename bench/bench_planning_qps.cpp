// Planning-service throughput: queries/s through the RequestRouter
// (in-process, socket-free — the acceptance floor is the warm model-path
// row at >= 1e5 queries/s) plus one loopback round-trip row through a
// live PlanningServer as the informational end-to-end number. Items/s is
// queries answered per second; the /threads:N variants drive one shared
// warm router from concurrent benchmark threads, so the row measures
// cache + envelope contention, not model evaluation. Engineering numbers
// for the perf trajectory, not paper results.
#include <benchmark/benchmark.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include <chrono>

#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/span.hpp"

namespace {

namespace serve = swarmavail::serve;

// u = 30 keeps the closed-form evaluation in the cheap regime (hump ~ 60
// terms); the canonical-key cache makes repeats sub-microsecond anyway.
const std::string kEval =
    "{\"verb\":\"EVAL\",\"id\":1,\"lambda\":2,\"size\":1,\"mu\":1.25,"
    "\"r\":0.05,\"u\":30}";
const std::string kPlan =
    "{\"verb\":\"PLAN\",\"id\":2,\"lambda\":2,\"size\":1,\"mu\":1.25,"
    "\"r\":0.05,\"u\":30,\"variable\":\"k\",\"target\":0.001,\"max_k\":64}";

/// Warm cached EVAL: parse + canonical key + fragment hit + envelope.
/// This is the acceptance row — queries/s must clear 1e5.
void BM_PlanningRouterEvalWarm(benchmark::State& state) {
    static serve::RequestRouter router;  // shared: stays warm across variants
    if (state.thread_index() == 0) {
        benchmark::DoNotOptimize(router.route(kEval).payload);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(router.route(kEval).payload);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["srv_queries_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlanningRouterEvalWarm)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

/// Warm cached EVAL with a RequestSpans scratch attached: every stage
/// boundary takes two steady_clock reads. merge_bench_json.py turns the
/// delta against the plain warm row into srv_span_overhead_pct
/// (informational — tracing enabled is allowed to cost something).
void BM_PlanningRouterEvalWarmSpanOn(benchmark::State& state) {
    serve::RequestRouter router;
    const auto epoch = std::chrono::steady_clock::now();
    serve::RequestSpans spans;
    spans.set_epoch(epoch);
    benchmark::DoNotOptimize(router.route(kEval, &spans).payload);
    for (auto _ : state) {
        spans = serve::RequestSpans{};
        spans.set_epoch(epoch);
        benchmark::DoNotOptimize(router.route(kEval, &spans).payload);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["srv_queries_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
// Threads(1)/UseRealTime matches the plain warm row's name shape, so the
// merge script can pair "...WarmSpanOn/threads:1/real_time" with
// "...Warm/threads:1/real_time" by dropping the marker.
BENCHMARK(BM_PlanningRouterEvalWarmSpanOn)->Threads(1)->UseRealTime();

/// Warm cached EVAL through the spans-capable route() overload with a null
/// scratch — the runtime-disabled path every request takes when tracing is
/// off. The delta against the plain warm row (srv_span_idle_overhead_pct)
/// is the acceptance-gated <= 1% "tracing disabled costs nothing" number.
void BM_PlanningRouterEvalWarmSpanIdle(benchmark::State& state) {
    serve::RequestRouter router;
    benchmark::DoNotOptimize(router.route(kEval, nullptr).payload);
    for (auto _ : state) {
        benchmark::DoNotOptimize(router.route(kEval, nullptr).payload);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["srv_queries_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlanningRouterEvalWarmSpanIdle)->Threads(1)->UseRealTime();

/// Cold EVAL: every iteration carries a fresh u, so each request pays the
/// full parse + closed-form model evaluation and inserts a new cache
/// entry (FIFO eviction churn included once the cache fills).
void BM_PlanningRouterEvalCold(benchmark::State& state) {
    serve::RequestRouter router;
    std::uint64_t tick = 0;
    for (auto _ : state) {
        std::string payload =
            "{\"verb\":\"EVAL\",\"lambda\":2,\"size\":1,\"mu\":1.25,"
            "\"r\":0.05,\"u\":30.";
        payload += std::to_string(tick++);
        payload += "}";
        benchmark::DoNotOptimize(router.route(payload).payload);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["srv_queries_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlanningRouterEvalCold);

/// Warm inverse plan (bisect K to a target): fragment hit + envelope,
/// same shape as the dashboard-refresh pattern the cache exists for.
void BM_PlanningRouterPlanWarm(benchmark::State& state) {
    serve::RequestRouter router;
    benchmark::DoNotOptimize(router.route(kPlan).payload);
    for (auto _ : state) {
        benchmark::DoNotOptimize(router.route(kPlan).payload);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["srv_queries_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlanningRouterPlanWarm);

/// One blocking round trip (encode frame, write, read, decode) against a
/// live PlanningServer on loopback — informational: the delta over the
/// warm router row is the socket + framing + queue-hop cost.
void BM_PlanningServerLoopback(benchmark::State& state) {
    serve::ServerConfig config;
    config.threads = 2;
    auto server = std::make_unique<serve::PlanningServer>(config);
    server->start();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
        state.SkipWithError("loopback connect failed");
        if (fd >= 0) {
            ::close(fd);
        }
        return;
    }

    const std::string frame = serve::encode_frame(kEval);
    serve::FrameDecoder decoder;
    char buffer[4096];
    bool failed = false;
    for (auto _ : state) {
        if (::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(frame.size())) {
            failed = true;
            break;
        }
        std::string payload;
        std::string error;
        while (decoder.next(payload, error) != serve::FrameDecoder::Status::kFrame) {
            if (decoder.poisoned()) {
                failed = true;
                break;
            }
            const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
            if (got <= 0) {
                failed = true;
                break;
            }
            decoder.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
        }
        if (failed) {
            break;
        }
        benchmark::DoNotOptimize(payload.data());
    }
    ::close(fd);
    server->stop();
    if (failed) {
        state.SkipWithError("loopback round trip failed");
        return;
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["srv_queries_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlanningServerLoopback)->UseRealTime();

}  // namespace
