// Ablation — Zipf-skewed demand (Section 3.3.1's skewed preferences).
//
// With p_k = c/k^delta, how does the bundling gain distribute across ranks,
// and how does the skew delta change who wins? The paper proves Lemma 3.1
// still holds under Zipf demand; this bench makes the per-rank economics
// visible.
#include <iostream>

#include "model/zipf_demand.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::model;

    print_banner(std::cout, "Ablation: Zipf demand skew (p_k = c / k^delta)");

    SwarmParams params;
    params.peer_arrival_rate = 1.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;

    const std::size_t files = 6;
    const double aggregate = 0.1;  // total demand across the catalog (1/s)

    for (double delta : {0.0, 0.5, 1.0, 1.5}) {
        std::cout << "\ndelta = " << delta << ":\n";
        const auto popularity = zipf_popularities(files, delta);
        HeterogeneousDemandConfig config;
        for (double p : popularity) {
            config.lambdas.push_back(p * aggregate);
        }
        config.single_publisher = false;
        const auto rows = compare_isolated_vs_bundle(params, config);

        TableWriter table{{"rank", "lambda_k", "isolated E[T]", "bundled E[T]", "gain",
                           "bundling wins?"}};
        std::size_t winners = 0;
        for (const auto& row : rows) {
            winners += row.gain > 0.0 ? 1 : 0;
            table.add_row({std::to_string(row.file), format_double(row.lambda, 4),
                           format_double(row.isolated_time, 5),
                           format_double(row.bundled_time, 5),
                           format_double(row.gain, 5), row.gain > 0.0 ? "yes" : "no"});
        }
        table.print(std::cout);
        std::cout << "ranks where bundling wins: " << winners << "/" << files << "\n";
    }

    std::cout << "\n(flatter demand => every file is unpopular => bundling helps\n"
                 " everyone; steeper skew => the head pays to carry the tail)\n";
    return 0;
}
