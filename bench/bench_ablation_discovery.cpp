// Ablation — peer-discovery visibility (tracker handout size + PEX).
//
// The simulators elsewhere assume global peer visibility; real clients see
// a bounded neighbor set from the tracker, extended by PEX (the mechanism
// the paper's monitoring agents exploit in Section 2.2). This bench sweeps
// the view size in the Figure 4 seedless setting: small views fragment the
// swarm and shrink the peer-sustained busy periods, shifting the
// self-sustainability boundary upward.
#include <iostream>
#include <memory>

#include "swarm/swarm_sim.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::swarm;

    print_banner(std::cout, "Ablation: peer-discovery visibility (Figure 4 setup)");

    SwarmSimConfig config;
    config.bundle_size = 6;
    config.peer_arrival_rate = 1.0 / 150.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(33.0 * kKBps);
    config.publisher_capacity = 50.0 * kKBps;
    config.publisher = PublisherBehavior::kLeaveAfterFirstCompletion;
    config.horizon = 1500.0;
    config.seed = 15;

    TableWriter table{{"max neighbors", "served (5 runs)", "last completion (s)",
                       "available fraction"}};
    for (std::size_t neighbors : {0, 32, 8, 4, 2}) {
        config.max_neighbors = neighbors;
        std::uint64_t served = 0;
        double last = 0.0;
        double avail = 0.0;
        for (const auto& run : run_swarm_replications(config, 5)) {
            served += run.completions;
            last = std::max(last, run.last_completion);
            avail += run.available_fraction / 5.0;
        }
        table.add_row({neighbors == 0 ? "global" : std::to_string(neighbors),
                       std::to_string(served), format_double(last, 5),
                       format_double(avail, 3)});
    }
    table.print(std::cout);

    std::cout << "\nreading: PEX is remarkably effective -- even a 2-peer tracker\n"
                 "handout recovers global-visibility behaviour, because failed\n"
                 "fetches trigger gossip that quickly reconnects the piece market.\n"
                 "This is why the paper can model swarms as fully mixed M/G/inf\n"
                 "queues despite bounded real-world peer views.\n";
    return 0;
}
