// Replication-engine scaling benchmark: serial vs. multi-threaded seed
// replication on Figure-4-style workloads. Items/s is replications per
// second; the `threads` counter lets scripts/bench.sh compute per-workload
// speedup curves for BENCH_perf.json. These are engineering numbers for the
// perf trajectory, not paper results.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "sim/availability_sim.hpp"
#include "sim/experiment.hpp"
#include "sim/parallel.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace swarmavail;

/// Thread counts to sweep: serial, 2, 4, and (if wider) the full machine.
void scaling_args(benchmark::internal::Benchmark* bench) {
    bench->Arg(1)->Arg(2)->Arg(4);
    const unsigned hardware = std::thread::hardware_concurrency();
    if (hardware > 4) {
        bench->Arg(static_cast<long>(hardware));
    }
    bench->ArgName("threads")->UseRealTime()->Unit(benchmark::kMillisecond);
}

/// The Figure 4 setup: a bundled swarm whose publisher departs after the
/// first completion; each replication is one independent seeded run.
swarm::SwarmSimConfig fig4_style_config() {
    swarm::SwarmSimConfig config;
    config.bundle_size = 4;
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity = std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
    config.publisher_capacity = 100.0 * swarm::kKBps;
    config.publisher = swarm::PublisherBehavior::kLeaveAfterFirstCompletion;
    config.horizon = 1800.0;
    config.seed = 11;
    return config;
}

void BM_SwarmReplicationScaling(benchmark::State& state) {
    const auto threads = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kReplications = 8;
    const auto config = fig4_style_config();
    for (auto _ : state) {
        const auto runs = swarm::run_swarm_replications(config, kReplications,
                                                        sim::ParallelPolicy{threads});
        benchmark::DoNotOptimize(runs.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kReplications));
    state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_SwarmReplicationScaling)->Apply(scaling_args);

/// The availability-cell replication body shared by the plain and the
/// TelemetryOn experiment-cell benches, so the pair differ only in the
/// attached session.
sim::Replication availability_cell_body() {
    return [](std::uint64_t seed) {
        sim::AvailabilitySimConfig config;
        config.params.peer_arrival_rate = 1.0 / 60.0;
        config.params.content_size = 80.0;
        config.params.download_rate = 1.0;
        config.params.publisher_arrival_rate = 1.0 / 900.0;
        config.params.publisher_residence = 300.0;
        config.horizon = 40000.0;
        config.seed = seed;
        const auto result = sim::run_availability_sim(config);
        return std::vector<double>{result.download_times.mean(),
                                   result.unavailable_time_fraction};
    };
}

void BM_ExperimentCellScaling(benchmark::State& state) {
    const auto threads = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kReplications = 16;
    const auto body = availability_cell_body();
    for (auto _ : state) {
        const auto cell = sim::run_replications("availability", body, kReplications, 17,
                                                sim::ParallelPolicy{threads});
        benchmark::DoNotOptimize(cell.samples.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kReplications));
    state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ExperimentCellScaling)->Apply(scaling_args);

/// Same workload with a live telemetry session sampling at the default
/// 250 ms cadence into an in-memory ring. merge_bench_json.py pairs this
/// row with BM_ExperimentCellScaling (the name minus "TelemetryOn") and
/// emits telemetry_overhead_pct; the perf-smoke gate holds it at <= 1%.
void BM_ExperimentCellScalingTelemetryOn(benchmark::State& state) {
    const auto threads = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kReplications = 16;
    const auto body = availability_cell_body();

    telemetry::MemoryTelemetryExporter ring;
    telemetry::TelemetryConfig telemetry_config;
    telemetry_config.interval_s = 0.25;
    telemetry_config.exporters.push_back(&ring);
    telemetry::TelemetrySession session{telemetry_config};
    session.start();

    sim::RunControl control;
    control.policy = sim::ParallelPolicy{threads};
    control.telemetry = &session;
    for (auto _ : state) {
        const auto cell =
            sim::run_replications("availability", body, kReplications, 17, control);
        benchmark::DoNotOptimize(cell.samples.size());
    }
    session.stop();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kReplications));
    state.counters["threads"] = static_cast<double>(threads);
    state.counters["snapshots"] = static_cast<double>(session.snapshots_taken());
}
BENCHMARK(BM_ExperimentCellScalingTelemetryOn)->Apply(scaling_args);

}  // namespace
