// Figure 5 — peer arrival/departure timelines under an intermittent
// publisher, K = 2, 3, 4.
//
// Paper: publisher 100 KBps alternates on/off with means 300 s / 900 s;
// lambda = 1/60 peers/s per file; mu = 50 KBps. K=2 shows "flash
// departures" (blocked peers completing together when the publisher
// returns); K=3 reduces blocking; K=4 nearly eliminates it.
#include <iostream>
#include <memory>

#include "swarm/observables.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::swarm;

    print_banner(std::cout, "Figure 5: peer timelines with an intermittent publisher");

    SwarmSimConfig config;
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(50.0 * kKBps);
    config.publisher_capacity = 100.0 * kKBps;
    config.publisher = PublisherBehavior::kOnOff;
    config.publisher_on_mean = 300.0;
    config.publisher_off_mean = 900.0;
    config.horizon = 1200.0;
    config.drain_after_horizon = true;
    config.drain_deadline_factor = 2.0;
    config.seed = 23;

    TableWriter table{{"K", "peers", "completions", "max 30s burst", "burst fraction",
                       "mean T (s)", "paper"}};
    for (std::size_t k : {2, 3, 4}) {
        config.bundle_size = k;
        const auto runs = run_swarm_replications(config, 10);
        std::uint64_t peers = 0;
        std::size_t burst = 0;
        std::uint64_t completions = 0;
        for (const auto& run : runs) {
            peers += run.arrivals;
            completions += run.completions;
            burst = std::max(burst, max_completion_burst(run.completion_times, 30.0));
        }
        const auto merged = merge_download_times(runs);
        const double burst_fraction =
            completions == 0 ? 0.0
                             : static_cast<double>(burst) /
                                   (static_cast<double>(completions) / 10.0);
        std::string note;
        if (k == 2) {
            note = "flash departures";
        } else if (k == 3) {
            note = "less blocking";
        } else {
            note = "blocking ~gone";
        }
        table.add_row({std::to_string(k), std::to_string(peers),
                       std::to_string(completions), std::to_string(burst),
                       format_double(burst_fraction, 3), format_double(merged.mean(), 5),
                       note});
    }
    table.print(std::cout);

    std::cout << "\nsample timeline, K=2, one run (each row is a peer; '-' while in\n"
                 "the swarm, '|' completion, '?' incomplete at the end):\n\n";
    config.bundle_size = 2;
    config.horizon = 1200.0;
    config.drain_after_horizon = false;
    const auto run = run_swarm_sim(config);
    std::cout << render_peer_timeline(run.peers, 1200.0, 80);
    return 0;
}
