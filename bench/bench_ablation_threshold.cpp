// Ablation — sensitivity to the coverage threshold m (Section 3.3.3).
//
// m is the paper's fitted proxy for "enough peers to cover every block";
// Section 4 uses m = 9. This bench sweeps m and reports how availability
// and the optimal bundle size react, against the flow-level simulator.
#include <iostream>

#include "model/bundling.hpp"
#include "sim/availability_sim.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;

    print_banner(std::cout, "Ablation: coverage threshold m");

    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;

    TableWriter table{{"m", "model P (Thm 3.3)", "sim P (arrivals)", "model E[T]",
                       "sim E[T]", "model opt K (eq. 16)"}};
    for (std::size_t m : {1, 3, 6, 9, 12}) {
        const auto dt = model::download_time_threshold(params, m);

        sim::AvailabilitySimConfig sim_config;
        sim_config.params = params;
        sim_config.coverage_threshold = m;
        sim_config.patient_peers = true;
        sim_config.horizon = 2.0e6;
        sim_config.seed = 31;
        const auto sim_result = run_availability_sim(sim_config);

        model::BundleSweepConfig sweep_config;
        sweep_config.max_k = 10;
        sweep_config.model = model::DownloadModel::kSinglePublisher;
        sweep_config.coverage_threshold = m;
        const auto sweep = model::sweep_bundle_sizes(params, sweep_config);

        table.add_row({std::to_string(m), format_double(dt.unavailability, 4),
                       format_double(sim_result.arrival_unavailability, 4),
                       format_double(dt.download_time, 5),
                       format_double(sim_result.download_times.mean(), 5),
                       std::to_string(model::optimal_bundle_size(sweep))});
    }
    table.print(std::cout);

    std::cout << "\nhigher m = stricter coverage requirement: busy periods end\n"
                 "earlier, unavailability grows, and larger bundles are needed\n"
                 "to self-sustain (the Section 4 experiments fit m = 9).\n";
    return 0;
}
