// Event-queue microbenchmarks (google-benchmark): steady-state push/pop
// throughput and cancellation cost of the calendar/ladder EventQueue at
// different fill levels and horizon mixes. These isolate the scheduler from
// the simulators so a queue regression is visible before it washes out in
// whole-sim numbers.
//
// Horizon mixes model the two scheduling populations the simulators
// produce:
//   dense-transfer: every delta is a short transfer completion, uniform in
//     [0, 1) model time units -- events land in the calendar's near-future
//     buckets.
//   sparse-churn: 1 in 8 deltas is a far-future churn event (peer/publisher
//     arrival or departure) up to 4096x further out -- events land in the
//     overflow ladder and are rewindowed on drain.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/calendar.hpp"
#include "sim/event_queue.hpp"
#include "util/random.hpp"

namespace {

using namespace swarmavail;

enum HorizonMix : std::int64_t { kDenseTransfer = 0, kSparseChurn = 1 };

double next_delta(Rng& rng, std::int64_t mix) {
    const double base = rng.uniform();
    if (mix == kSparseChurn && (rng() & 7U) == 0) {
        return base * 4096.0;
    }
    return base;
}

void set_mix_label(benchmark::State& state) {
    state.SetLabel(state.range(1) == kDenseTransfer ? "dense-transfer" : "sparse-churn");
}

// Publishes the calendar/ladder regime counters so BENCH_perf.json records
// which structural paths each workload exercised (rewindows vs small-ladder
// rewindows, ladder spills, staged merges and their insertion-splice share,
// worst bucket occupancy). A perf delta with a counter shift points at a
// regime transition; one without is a plain code-speed change.
void publish_calendar_stats(benchmark::State& state,
                            const sim::CalendarDebugStats& cal) {
    state.counters["cal_rewindows"] = static_cast<double>(cal.rewindows);
    state.counters["cal_small_rewindows"] = static_cast<double>(cal.small_rewindows);
    state.counters["cal_ladder_spills"] = static_cast<double>(cal.ladder_spills);
    state.counters["cal_staged_merges"] = static_cast<double>(cal.staged_merges);
    state.counters["cal_insertion_merges"] =
        static_cast<double>(cal.insertion_merges);
    state.counters["cal_max_bucket"] =
        static_cast<double>(cal.max_bucket_occupancy);
}

// The horizon mixes exist to force distinct calendar regimes; if a future
// routing change makes them exercise the same paths, the benchmark's two
// variants silently measure one thing. Fail loudly instead.
void check_mix_regime(benchmark::State& state,
                      const sim::CalendarDebugStats& cal) {
    if (state.range(1) == kSparseChurn && cal.ladder_spills == 0) {
        state.SkipWithError(
            "sparse-churn mix routed nothing to the ladder; horizon mix no "
            "longer exercises the overflow regime");
        return;
    }
    if (cal.rewindows == 0 && cal.ladder_spills > 0) {
        state.SkipWithError(
            "ladder received entries but never rewindowed; drain path not "
            "exercised");
    }
}

// Steady-state hold-at-fill workload: pre-fill to `fill` events, then each
// op pops the head and schedules a replacement. This is the simulators'
// dominant pattern (population roughly constant, one completion schedules
// the next), so items/s here is the scheduler's sustainable event rate.
void BM_EventQueuePushPop(benchmark::State& state) {
    const auto fill = static_cast<std::size_t>(state.range(0));
    const auto mix = state.range(1);
    sim::EventQueue queue;
    Rng rng{7};
    for (std::size_t i = 0; i < fill; ++i) {
        queue.schedule_at(next_delta(rng, mix), [] {});
    }
    for (auto _ : state) {
        queue.run_next();
        queue.schedule_at(queue.now() + next_delta(rng, mix), [] {});
        benchmark::DoNotOptimize(queue);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    set_mix_label(state);
    publish_calendar_stats(state, queue.calendar_stats());
    check_mix_regime(state, queue.calendar_stats());
}
BENCHMARK(BM_EventQueuePushPop)
    ->ArgNames({"fill", "mix"})
    ->Args({64, kDenseTransfer})
    ->Args({64, kSparseChurn})
    ->Args({1024, kDenseTransfer})
    ->Args({1024, kSparseChurn})
    ->Args({16384, kDenseTransfer})
    ->Args({16384, kSparseChurn});

// Cancellation-heavy workload: each op schedules two events, cancels one of
// the two (alternating old/new so both head-adjacent and deep cancels
// occur), and pops one. Exercises the lazy-drop path: cancel() flips slot
// liveness and the dead entry is pruned when it surfaces at the head.
void BM_EventQueueCancel(benchmark::State& state) {
    const auto fill = static_cast<std::size_t>(state.range(0));
    const auto mix = state.range(1);
    sim::EventQueue queue;
    Rng rng{11};
    std::vector<sim::EventId> pending;
    pending.reserve(fill + 2);
    for (std::size_t i = 0; i < fill; ++i) {
        pending.push_back(queue.schedule_at(next_delta(rng, mix), [] {}));
    }
    bool cancel_old = false;
    for (auto _ : state) {
        const double base = queue.now();
        pending.push_back(queue.schedule_at(base + next_delta(rng, mix), [] {}));
        pending.push_back(queue.schedule_at(base + next_delta(rng, mix), [] {}));
        const std::size_t victim =
            cancel_old ? static_cast<std::size_t>(rng.uniform_index(pending.size()))
                       : pending.size() - 1;
        cancel_old = !cancel_old;
        queue.cancel(pending[victim]);
        pending[victim] = pending.back();
        pending.pop_back();
        queue.run_next();
        benchmark::DoNotOptimize(queue);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    set_mix_label(state);
    publish_calendar_stats(state, queue.calendar_stats());
    check_mix_regime(state, queue.calendar_stats());
}
BENCHMARK(BM_EventQueueCancel)
    ->ArgNames({"fill", "mix"})
    ->Args({1024, kDenseTransfer})
    ->Args({1024, kSparseChurn});

// Drain workload: fill the queue cold, then pop everything. Measures the
// rewindow/sort amortization on a full calendar instead of steady state;
// time is per drained event.
void BM_EventQueueFillDrain(benchmark::State& state) {
    const auto fill = static_cast<std::size_t>(state.range(0));
    const auto mix = state.range(1);
    sim::CalendarDebugStats last_drain{};
    for (auto _ : state) {
        state.PauseTiming();
        sim::EventQueue queue;
        Rng rng{13};
        state.ResumeTiming();
        for (std::size_t i = 0; i < fill; ++i) {
            queue.schedule_at(next_delta(rng, mix), [] {});
        }
        while (queue.run_next()) {
        }
        benchmark::DoNotOptimize(queue);
        last_drain = queue.calendar_stats();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(fill));
    set_mix_label(state);
    publish_calendar_stats(state, last_drain);
    check_mix_regime(state, last_drain);
}
BENCHMARK(BM_EventQueueFillDrain)
    ->ArgNames({"fill", "mix"})
    ->Args({16384, kDenseTransfer})
    ->Args({16384, kSparseChurn});

}  // namespace
