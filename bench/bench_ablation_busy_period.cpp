// Ablation — accuracy of the closed-form busy-period family against exact
// Monte-Carlo simulation of the coverage process.
//
// The whole model rests on eq. 9 (mixed busy period) and eq. 13 (residual
// busy period); this bench quantifies their error across a parameter grid,
// so downstream users know how much to trust the closed forms.
#include <iostream>

#include "queueing/busy_period.hpp"
#include "sim/monte_carlo.hpp"
#include "util/series.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::queueing;

    print_banner(std::cout, "Ablation: eq. 9 / eq. 13 vs exact Monte Carlo");

    Rng rng{11};
    TableWriter table{{"beta", "theta", "q1", "alpha1", "alpha2", "eq. 9 E[B]",
                       "MC E[B]", "rel. err"}};
    const MixedBusyPeriodParams cases[] = {
        {0.02, 10.0, 0.5, 40.0, 10.0},  {0.05, 30.0, 0.7, 80.0, 15.0},
        {0.1, 5.0, 0.2, 20.0, 60.0},    {0.01, 100.0, 0.9, 120.0, 100.0},
        {0.2, 8.0, 0.6, 12.0, 4.0},     {0.03, 50.0, 0.8, 100.0, 50.0},
    };
    for (const auto& params : cases) {
        const auto theory = busy_period_mixed(params);
        const sim::MixedBusyPeriodMc mc_params{params.beta, params.theta, params.q1,
                                               params.alpha1, params.alpha2};
        const auto mc = sim::sample_mixed_busy_periods(rng, mc_params, 100000);
        table.add_row({format_double(params.beta, 3), format_double(params.theta, 3),
                       format_double(params.q1, 3), format_double(params.alpha1, 3),
                       format_double(params.alpha2, 3), format_double(theory.value, 5),
                       format_double(mc.mean(), 5),
                       format_double(relative_difference(theory.value, mc.mean()), 2)});
    }
    table.print(std::cout);

    std::cout << "\nresidual busy period B(m) (eq. 13) vs birth-death simulation:\n";
    TableWriter residual{{"lambda", "service", "m", "eq. 13 B(m)", "MC B(m)", "rel. err"}};
    struct Case {
        double lambda;
        double service;
        std::size_t m;
    };
    for (const auto& c : {Case{0.04, 100.0, 2}, Case{1.0 / 60.0, 80.0, 1},
                          Case{0.05, 120.0, 4}, Case{1.0 / 20.0, 100.0, 3}}) {
        const double theory = steady_state_residual_busy_period(c.m, {c.lambda, c.service});
        StreamingStats mc;
        for (int i = 0; i < 100000; ++i) {
            mc.add(sim::sample_steady_state_residual(rng, c.m, c.lambda, c.service));
        }
        residual.add_row({format_double(c.lambda, 4), format_double(c.service, 4),
                          std::to_string(c.m), format_double(theory, 5),
                          format_double(mc.mean(), 5),
                          format_double(relative_difference(theory, mc.mean()), 2)});
    }
    residual.print(std::cout);
    std::cout << "\n(all relative errors should sit within Monte-Carlo noise, ~1%)\n";
    return 0;
}
