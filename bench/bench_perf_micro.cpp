// Performance microbenchmarks (google-benchmark): cost of the closed-form
// evaluations and simulator throughput. These are engineering numbers (how
// cheap is the model to evaluate at scale), not paper results.
#include <benchmark/benchmark.h>

#include <memory>

#include "model/bundling.hpp"
#include "queueing/busy_period.hpp"
#include "sim/availability_sim.hpp"
#include "sim/trace.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/metrics.hpp"

namespace {

using namespace swarmavail;

model::SwarmParams base_params() {
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

void BM_BusyPeriodMixed(benchmark::State& state) {
    const auto k = static_cast<double>(state.range(0));
    const queueing::MixedBusyPeriodParams params{k / 60.0 + 1.0 / 900.0, 300.0,
                                                 (k / 60.0) / (k / 60.0 + 1.0 / 900.0),
                                                 80.0 * k, 300.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(queueing::busy_period_mixed(params));
    }
}
BENCHMARK(BM_BusyPeriodMixed)->Arg(1)->Arg(4)->Arg(8);

void BM_SteadyStateResidual(benchmark::State& state) {
    const auto k = static_cast<double>(state.range(0));
    const queueing::ResidualParams params{k / 60.0, 80.0 * k};
    for (auto _ : state) {
        benchmark::DoNotOptimize(queueing::steady_state_residual_busy_period(9, params));
    }
}
BENCHMARK(BM_SteadyStateResidual)->Arg(1)->Arg(4)->Arg(8);

void BM_DownloadTimeSweep(benchmark::State& state) {
    const auto params = base_params();
    model::BundleSweepConfig config;
    config.max_k = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(model::sweep_bundle_sizes(params, config));
    }
}
BENCHMARK(BM_DownloadTimeSweep)->Arg(4)->Arg(8);

void BM_AvailabilitySim(benchmark::State& state) {
    sim::AvailabilitySimConfig config;
    config.params = base_params();
    config.horizon = static_cast<double>(state.range(0));
    config.seed = 3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_availability_sim(config));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AvailabilitySim)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SwarmSim(benchmark::State& state) {
    swarm::SwarmSimConfig config;
    config.bundle_size = static_cast<std::size_t>(state.range(0));
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity = std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
    config.publisher_capacity = 100.0 * swarm::kKBps;
    config.publisher = swarm::PublisherBehavior::kOnOff;
    config.horizon = 2400.0;
    config.seed = 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(swarm::run_swarm_sim(config));
    }
}
BENCHMARK(BM_SwarmSim)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Observability overhead rows: the same workloads with a metrics registry
// and an enabled tracer draining into a null sink. merge_bench_json.py
// pairs each *TraceOn row with its plain counterpart and emits
// tracing_overhead_pct; the plain rows above (tracing compiled in but
// runtime-disabled) are the ones held to the <3% regression budget.
void BM_AvailabilitySimTraceOn(benchmark::State& state) {
    sim::AvailabilitySimConfig config;
    config.params = base_params();
    config.horizon = static_cast<double>(state.range(0));
    config.seed = 3;
    for (auto _ : state) {
        MetricsRegistry metrics;
        sim::NullTraceSink sink;
        sim::Tracer tracer{sink};
        tracer.set_enabled(true);
        config.metrics = &metrics;
        config.tracer = &tracer;
        benchmark::DoNotOptimize(sim::run_availability_sim(config));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AvailabilitySimTraceOn)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SwarmSimTraceOn(benchmark::State& state) {
    swarm::SwarmSimConfig config;
    config.bundle_size = static_cast<std::size_t>(state.range(0));
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity = std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
    config.publisher_capacity = 100.0 * swarm::kKBps;
    config.publisher = swarm::PublisherBehavior::kOnOff;
    config.horizon = 2400.0;
    config.seed = 4;
    for (auto _ : state) {
        MetricsRegistry metrics;
        sim::NullTraceSink sink;
        sim::Tracer tracer{sink};
        tracer.set_enabled(true);
        config.metrics = &metrics;
        config.tracer = &tracer;
        benchmark::DoNotOptimize(swarm::run_swarm_sim(config));
    }
}
BENCHMARK(BM_SwarmSimTraceOn)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Fingerprint overhead rows: the plain rows above run with determinism
// fingerprints ON (the config default), so these disable them and
// merge_bench_json.py pairs BM_*FingerprintOff with its plain counterpart
// to emit fingerprint_overhead_pct — note the inverted direction versus
// the TraceOn/TelemetryOn pairs (here the suffixed row is the baseline).
// Budget: <= 2% on BM_SwarmSim/4.
void BM_AvailabilitySimFingerprintOff(benchmark::State& state) {
    sim::AvailabilitySimConfig config;
    config.params = base_params();
    config.horizon = static_cast<double>(state.range(0));
    config.seed = 3;
    config.fingerprint = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_availability_sim(config));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AvailabilitySimFingerprintOff)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SwarmSimFingerprintOff(benchmark::State& state) {
    swarm::SwarmSimConfig config;
    config.bundle_size = static_cast<std::size_t>(state.range(0));
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity = std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
    config.publisher_capacity = 100.0 * swarm::kKBps;
    config.publisher = swarm::PublisherBehavior::kOnOff;
    config.horizon = 2400.0;
    config.seed = 4;
    config.fingerprint = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(swarm::run_swarm_sim(config));
    }
}
BENCHMARK(BM_SwarmSimFingerprintOff)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
