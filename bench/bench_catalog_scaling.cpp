// Catalog-engine scaling benchmark: whole-catalog simulation throughput
// (files/s) at 1k and 10k files, sweeping the sharded thread count, plus
// the single-threaded shared-queue engine as the multiplexing baseline.
// Items/s is catalog files simulated per second; the `threads` counter lets
// scripts/bench.sh compute speedup curves for BENCH_perf.json. These are
// engineering numbers for the perf trajectory, not paper results.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <thread>

#include "catalog/bundling_policy.hpp"
#include "catalog/catalog.hpp"
#include "catalog/catalog_engine.hpp"
#include "catalog/report.hpp"

namespace {

using namespace swarmavail;

/// Thread counts to sweep: serial, 2, 4, and (if wider) the full machine.
void scaling_args(benchmark::internal::Benchmark* bench) {
    for (long files : {1000L, 10000L}) {
        bench->Args({files, 1})->Args({files, 2})->Args({files, 4});
        const unsigned hardware = std::thread::hardware_concurrency();
        if (hardware > 4) {
            bench->Args({files, static_cast<long>(hardware)});
        }
    }
    bench->ArgNames({"files", "threads"})->UseRealTime()->Unit(benchmark::kMillisecond);
}

catalog::Catalog make_catalog(std::size_t files) {
    catalog::CatalogConfig config;
    config.num_files = files;
    config.zipf_exponent = 1.0;
    config.aggregate_demand = 1.0;  // one request/s across the catalog
    config.file_size = 80.0;
    config.download_rate = 1.0;
    config.publisher_arrival_rate = 1.0 / 900.0;
    config.publisher_residence = 300.0;
    return catalog::build_catalog(config);
}

catalog::CatalogEngineConfig engine_config(std::size_t threads) {
    catalog::CatalogEngineConfig config;
    config.horizon = 2000.0;
    config.seed = 17;
    config.policy.threads = threads;
    return config;
}

void BM_CatalogSharded(benchmark::State& state) {
    const auto files = static_cast<std::size_t>(state.range(0));
    const auto threads = static_cast<std::size_t>(state.range(1));
    const auto catalog = make_catalog(files);
    const catalog::FixedK policy{8};
    const auto config = engine_config(threads);
    for (auto _ : state) {
        const auto report = catalog::run_catalog(catalog, policy, config);
        benchmark::DoNotOptimize(report.arrivals);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(files));
    state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_CatalogSharded)->Apply(scaling_args);

void BM_CatalogSharedQueue(benchmark::State& state) {
    const auto files = static_cast<std::size_t>(state.range(0));
    const auto catalog = make_catalog(files);
    const catalog::FixedK policy{8};
    auto config = engine_config(1);
    config.execution = catalog::ExecutionMode::kSharedQueue;
    for (auto _ : state) {
        const auto report = catalog::run_catalog(catalog, policy, config);
        benchmark::DoNotOptimize(report.arrivals);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(files));
}
BENCHMARK(BM_CatalogSharedQueue)
    ->Arg(1000)
    ->Arg(10000)
    ->ArgName("files")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
