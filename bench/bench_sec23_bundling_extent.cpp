// Section 2.3.1 — extent of bundling per category.
//
// Paper (May 6, 2009 Mininova snapshot, 1,087,933 swarms):
//   music: 193,491 of 267,117 swarms are bundles (72.4%)
//   tv:     25,990 of 164,930 swarms are bundles (15.8%)
//   books:     841 collections; +6,270 extension bundles of 66,387 (9.4%)
//
// Here: a 1/10-scale synthetic snapshot classified with the same
// extension/keyword rules.
#include <iostream>

#include "measurement/analysis.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::measurement;

    print_banner(std::cout, "Section 2.3.1: extent of bundling (1/10-scale snapshot)");

    const auto catalog = generate_catalog(CatalogConfig{});
    const auto extent = bundling_extent(catalog);

    TableWriter table{{"category", "swarms", "bundles", "bundle %", "collections",
                       "paper bundle %"}};
    for (const auto& row : extent) {
        std::string paper = "-";
        if (row.category == Category::kMusic) {
            paper = "72.4";
        } else if (row.category == Category::kTv) {
            paper = "15.8";
        } else if (row.category == Category::kBooks) {
            paper = "9.4 (+1.3 collections)";
        }
        table.add_row({to_string(row.category), std::to_string(row.swarms),
                       std::to_string(row.bundles),
                       format_double(100.0 * row.bundle_fraction(), 3),
                       std::to_string(row.collections), paper});
    }
    table.print(std::cout);

    std::cout << "\ntotal swarms in snapshot: " << catalog.size() << "\n";
    std::cout << "classifier: >=2 files with category media extensions; book\n"
                 "collections matched on the 'collection' title keyword.\n";
    return 0;
}
