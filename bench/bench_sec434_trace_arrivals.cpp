// Section 4.3.4 — sensitivity to the arrival pattern.
//
// Paper: repeating the Figure 6 experiments with (scaled) real arrival
// traces instead of Poisson arrivals does not qualitatively change the
// conclusions, as long as the mean rate stays steady for long enough; a
// decaying flash-crowd rate breaks the model's busy-period assumption.
//
// This bench drives the block-level simulator with three arrival inputs of
// equal mean rate -- Poisson, a steady trace, and a decaying trace -- and
// compares bundling's effect in each.
#include <cmath>
#include <iostream>
#include <memory>

#include "sim/processes.hpp"
#include "swarm/observables.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/table.hpp"

namespace {

using namespace swarmavail;

SampleSet run_with_trace(std::size_t k, const std::vector<double>& trace,
                         std::uint64_t seed) {
    swarm::SwarmSimConfig config;
    config.bundle_size = k;
    config.peer_arrival_rate = 1.0 / 60.0;  // ignored when a trace is given
    config.arrival_trace = trace;
    config.peer_capacity = std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
    config.publisher_capacity = 100.0 * swarm::kKBps;
    config.publisher = swarm::PublisherBehavior::kOnOff;
    config.publisher_on_mean = 300.0;
    config.publisher_off_mean = 900.0;
    config.horizon = 1200.0;
    config.drain_after_horizon = true;
    config.drain_deadline_factor = 2.0;
    config.seed = seed;
    const auto result = swarm::run_swarm_sim(config);
    SampleSet samples;
    for (const auto& peer : result.peers) {
        if (peer.completion >= 0.0) {
            samples.add(peer.completion - peer.arrival);
        }
    }
    return samples;
}

}  // namespace

int main() {
    using namespace swarmavail;

    print_banner(std::cout, "Section 4.3.4: Poisson vs trace-driven arrivals");

    TableWriter table{{"arrivals", "K", "n", "mean T (s)", "median", "p95"}};
    Rng rng{4344};
    for (std::size_t k : {2, 4}) {
        const double aggregate = static_cast<double>(k) / 60.0;
        for (int mode = 0; mode < 3; ++mode) {
            SampleSet merged;
            for (std::uint64_t replicate = 0; replicate < 10; ++replicate) {
                std::vector<double> trace;
                std::string label;
                if (mode == 0) {
                    label = "poisson";
                    trace.clear();  // built-in Poisson process
                } else if (mode == 1) {
                    label = "steady trace";
                    trace = sim::sample_homogeneous_poisson(rng, aggregate, 1200.0);
                } else {
                    label = "decaying trace";
                    // Same expected count over the window:
                    // lambda0 tau (1 - e^{-T/tau}) = aggregate * T.
                    const double tau = 400.0;
                    const double lambda0 = aggregate * 1200.0 /
                                           (tau * (1.0 - std::exp(-1200.0 / tau)));
                    trace = sim::sample_decaying_poisson(rng, lambda0, tau, 1200.0);
                }
                auto samples = run_with_trace(k, trace, 4000 + k + 100 * replicate);
                merged.add_all(samples.samples());
            }
            const std::string label = mode == 0   ? "poisson"
                                      : mode == 1 ? "steady trace"
                                                  : "decaying trace";
            table.add_row({label, std::to_string(k), std::to_string(merged.size()),
                           format_double(merged.mean(), 5),
                           format_double(merged.median(), 5),
                           format_double(merged.quantile(0.95), 5)});
        }
    }
    table.print(std::cout);

    std::cout << "\nreading: steady traces track the Poisson results (the model's\n"
                 "conclusions survive non-Poisson but steady arrivals); the\n"
                 "decaying flash crowd concentrates demand early, so late busy\n"
                 "periods are shorter than the steady-rate model would predict --\n"
                 "exactly the caveat Section 4.3.4 raises.\n";
    return 0;
}
