// Section 2.3.2 — the "Friends" case study: availability correlates with
// bundling within one show's swarms.
//
// Paper: 52 swarms for the show; the 23 with seeds comprised 21 bundles and
// 2 single episodes; the 29 without seeds comprised only 7 bundles.
//
// Here: a synthetic TV category pushed through the monitoring pipeline;
// the contingency table is computed from observed bitmaps + the extension
// classifier, exactly like the paper's analysis.
#include <iostream>

#include "measurement/analysis.hpp"
#include "measurement/monitor.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::measurement;

    print_banner(std::cout, "Section 2.3.2: bundling/availability contingency (TV swarms)");

    CatalogConfig catalog_config;
    catalog_config.music_swarms = 0;
    catalog_config.tv_swarms = 5200;  // 100 "Friends"-sized shows worth
    catalog_config.book_swarms = 0;
    catalog_config.movie_swarms = 0;
    catalog_config.other_swarms = 0;
    catalog_config.tv_bundle_fraction = 0.54;  // 28/52 as in the case study
    const auto catalog = generate_catalog(catalog_config);

    MonitorConfig monitor_config;
    monitor_config.duration_hours = 24 * 90;
    const auto traces = monitor_catalog(catalog, monitor_config);

    const auto table =
        bundling_availability_contingency(catalog, traces, Category::kTv, 24 * 60);

    TableWriter out{{"", "bundles", "single episodes", "total"}};
    out.add_row({"with seeds", std::to_string(table.available_bundles),
                 std::to_string(table.available_singles),
                 std::to_string(table.available())});
    out.add_row({"without seeds", std::to_string(table.unavailable_bundles),
                 std::to_string(table.unavailable_singles),
                 std::to_string(table.unavailable())});
    out.print(std::cout);

    std::cout << "\nbundle share of seeded swarms:   "
              << table.bundle_share_of_available() << "   (paper: 21/23 = 0.91)\n";
    std::cout << "bundle share of seedless swarms: "
              << table.bundle_share_of_unavailable() << "   (paper: 7/29 = 0.24)\n";
    std::cout << "\n(the same correlation the paper reads off the Friends swarms:\n"
                 " seeded swarms are overwhelmingly bundles)\n";
    return 0;
}
