// Figure 6(b) — download time vs bundle size with heterogeneous
// (BitTyrant-measured) upload capacities.
//
// Paper: replaying the BitTyrant capacity distribution (mean ~280 KBps,
// median 50 KBps) does not change the curve qualitatively, but the larger
// average capacity shifts the optimal bundle size from 4 to 5: a bigger
// bundle is needed to stretch busy periods across publisher downtime.
#include <iostream>
#include <memory>

#include "fig6_common.hpp"
#include "util/table.hpp"

int main() {
    using namespace swarmavail;
    using namespace swarmavail::bench;

    print_banner(std::cout,
                 "Figure 6(b): download time vs K, BitTyrant upload capacities");

    const auto capacity = std::make_shared<swarm::BitTyrantCapacity>();
    std::cout << "capacity mixture: mean = " << capacity->mean() / swarm::kKBps
              << " KBps, median = " << capacity->median() / swarm::kKBps
              << " KBps   (paper: mean 280, median 50)\n\n";

    std::cout << "with reciprocity cap (tit-for-tat proxy: transfers run at\n"
                 "min(src, dst) capacity):\n";
    const auto capped = run_fig6_sweep(capacity, 8, 1.0 / 60.0, 40,
                                       /*reciprocity_cap=*/true);
    print_fig6_table(capped, {});

    std::cout << "\nwithout reciprocity cap (altruistic fast uploaders):\n";
    const auto uncapped = run_fig6_sweep(capacity, 8, 1.0 / 60.0, 40,
                                         /*reciprocity_cap=*/false);
    print_fig6_table(uncapped, {});

    std::cout << "(paper: optimum shifts from K=4 to K=5 with the faster mix;\n"
                 " shape unchanged: high mean/variance at small K, linear tail)\n";
    return 0;
}
