// Frame codec of the planning service: encode/decode round trips,
// incremental feeds, and every poison path of the strict length-prefixed
// framing (DESIGN.md §15).
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace serve = swarmavail::serve;
using serve::FrameDecoder;
using serve::ProtocolLimits;

namespace {

TEST(ServeProtocol, EncodeProducesLengthPrefixedFrame) {
    EXPECT_EQ(serve::encode_frame("{\"verb\":\"PING\"}"),
              "16\n{\"verb\":\"PING\"}\n");
    EXPECT_EQ(serve::encode_frame("x"), "2\nx\n");
    EXPECT_THROW(serve::encode_frame(""), std::exception);
}

TEST(ServeProtocol, DecodeRoundTripsSingleAndBackToBackFrames) {
    FrameDecoder decoder;
    decoder.feed(serve::encode_frame("{\"a\":1}") + serve::encode_frame("{\"b\":2}"));

    std::string payload;
    std::string error;
    ASSERT_EQ(decoder.next(payload, error), FrameDecoder::Status::kFrame);
    EXPECT_EQ(payload, "{\"a\":1}");
    ASSERT_EQ(decoder.next(payload, error), FrameDecoder::Status::kFrame);
    EXPECT_EQ(payload, "{\"b\":2}");
    EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kNeedMore);
    EXPECT_EQ(decoder.pending_bytes(), 0U);
    EXPECT_FALSE(decoder.poisoned());
}

TEST(ServeProtocol, DecodesByteByByteFeeds) {
    const std::string wire = serve::encode_frame("{\"verb\":\"PING\",\"id\":3}");
    FrameDecoder decoder;
    std::string payload;
    std::string error;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        decoder.feed(std::string(1, wire[i]));
        EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kNeedMore)
            << "completed early at byte " << i;
    }
    decoder.feed(std::string(1, wire.back()));
    ASSERT_EQ(decoder.next(payload, error), FrameDecoder::Status::kFrame);
    EXPECT_EQ(payload, "{\"verb\":\"PING\",\"id\":3}");
}

TEST(ServeProtocol, PendingBytesTracksBufferedInput) {
    FrameDecoder decoder;
    EXPECT_EQ(decoder.pending_bytes(), 0U);
    decoder.feed("16\n{\"verb\":");
    std::string payload;
    std::string error;
    EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kNeedMore);
    EXPECT_GT(decoder.pending_bytes(), 0U);
}

void expect_poison(const std::string& wire, const std::string& needle) {
    FrameDecoder decoder;
    decoder.feed(wire);
    std::string payload;
    std::string error;
    ASSERT_EQ(decoder.next(payload, error), FrameDecoder::Status::kError)
        << "accepted: " << wire;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "diagnostic \"" << error << "\" lacks \"" << needle << "\"";
    EXPECT_TRUE(decoder.poisoned());
    // Poison is sticky: further feeds keep reporting the error.
    decoder.feed(serve::encode_frame("{\"verb\":\"PING\"}"));
    EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kError);
}

TEST(ServeProtocol, PoisonsOnOversizedLengthPrefix) {
    expect_poison("123456789\n{}\n", "exceeds 8 digits");
}

TEST(ServeProtocol, PoisonsOnLeadingZeroPrefix) {
    expect_poison("016\n{\"verb\":\"PING\"}\n", "leading zero");
}

TEST(ServeProtocol, PoisonsOnNonDigitPrefix) {
    expect_poison("1a\n{}\n", "length prefix");
    expect_poison("\n{}\n", "length prefix");
    expect_poison("-3\n{}\n", "length prefix");
}

TEST(ServeProtocol, PoisonsOnZeroLength) {
    expect_poison("0\n\n", "length");
}

TEST(ServeProtocol, PoisonsOnPayloadOverLimit) {
    ProtocolLimits limits;
    limits.max_payload_bytes = 8;
    FrameDecoder decoder(limits);
    decoder.feed("9\n12345678\n");
    std::string payload;
    std::string error;
    ASSERT_EQ(decoder.next(payload, error), FrameDecoder::Status::kError);
    EXPECT_NE(error.find("payload"), std::string::npos) << error;
    EXPECT_TRUE(decoder.poisoned());
}

TEST(ServeProtocol, PoisonsWhenPayloadLacksTrailingNewline) {
    // Length counts the payload's trailing '\n'; a frame whose counted
    // bytes do not end in '\n' is malformed.
    expect_poison("4\nabcd", "newline");
}

TEST(ServeProtocol, TruncatedFrameStaysPendingNotPoisoned) {
    FrameDecoder decoder;
    decoder.feed("64\n{\"verb\":\"PING\"}");  // promises 64 bytes, has 15
    std::string payload;
    std::string error;
    EXPECT_EQ(decoder.next(payload, error), FrameDecoder::Status::kNeedMore);
    EXPECT_FALSE(decoder.poisoned());
    EXPECT_GT(decoder.pending_bytes(), 0U);  // the server's EOF check keys on this
}

TEST(ServeProtocol, MaxLengthPrefixWithinLimitIsAccepted) {
    // An 8-digit prefix is legal as long as the payload limit allows it.
    ProtocolLimits limits;
    limits.max_payload_bytes = 20'000'000;
    const std::string payload(9'999'999, 'x');
    FrameDecoder decoder(limits);
    decoder.feed("10000000\n" + payload + "\n");
    std::string out;
    std::string error;
    ASSERT_EQ(decoder.next(out, error), FrameDecoder::Status::kFrame) << error;
    EXPECT_EQ(out, payload);
}

}  // namespace
