// Inverse planners over the closed-form models: the K scan, the u / r
// expansion-plus-bisection, and feasibility edges.
#include "serve/planning.hpp"

#include <gtest/gtest.h>

#include "model/availability.hpp"

namespace serve = swarmavail::serve;
using serve::EvalRequest;
using serve::PlanOutcome;
using serve::PlanRequest;

namespace {

EvalRequest base_eval() {
    // u = 30 keeps the single-file swarm visibly unavailable (P ~ 0.2), so
    // bundle plans have real work to do: P(K) here is 0.203, 0.022,
    // 1.4e-5, 2.6e-10 for K = 1..4. (At u = 300 even K = 1 is already at
    // P ~ 3e-7 and every plan would trivially answer K = 1.)
    EvalRequest request;
    request.params.peer_arrival_rate = 2.0;
    request.params.content_size = 1.0;
    request.params.download_rate = 1.25;
    request.params.publisher_arrival_rate = 0.05;
    request.params.publisher_residence = 30.0;
    return request;
}

TEST(ServePlanning, EvaluateModelMatchesModelLayer) {
    const EvalRequest request = base_eval();
    const auto direct = swarmavail::model::availability_impatient(
        swarmavail::model::make_bundle(request.params, 1,
                                       swarmavail::model::PublisherScaling::kConstant));
    const auto served = serve::evaluate_model(request);
    EXPECT_EQ(served.unavailability, direct.unavailability);
    EXPECT_EQ(served.busy_period, direct.busy_period);

    EvalRequest bundled = request;
    bundled.bundle = 4;
    bundled.scaling = swarmavail::model::PublisherScaling::kProportional;
    const auto direct4 = swarmavail::model::availability_impatient(
        swarmavail::model::make_bundle(request.params, 4,
                                       swarmavail::model::PublisherScaling::kProportional));
    EXPECT_EQ(serve::evaluate_model(bundled).unavailability,
              direct4.unavailability);

    EvalRequest pubs_only = request;
    pubs_only.model = serve::AvailabilityModel::kPublishersOnly;
    EXPECT_EQ(serve::evaluate_model(pubs_only).unavailability,
              swarmavail::model::availability_publishers_only(request.params)
                  .unavailability);
}

TEST(ServePlanning, BundlePlanFindsSmallestFeasibleK) {
    PlanRequest request;
    request.base = base_eval();
    request.variable = PlanRequest::Variable::kBundleSize;
    request.target_unavailability = 1.0e-3;
    request.max_bundle = 64;

    const PlanOutcome outcome = serve::plan_bundle_size(request);
    ASSERT_TRUE(outcome.feasible);
    EXPECT_LE(outcome.achieved.unavailability, request.target_unavailability);
    EXPECT_EQ(outcome.evaluations, outcome.bundle);  // linear scan from K=1

    // Minimality: K-1 must miss the target.
    ASSERT_GT(outcome.bundle, 1U);
    EvalRequest prev = request.base;
    prev.bundle = outcome.bundle - 1;
    EXPECT_GT(serve::evaluate_model(prev).unavailability,
              request.target_unavailability);
}

TEST(ServePlanning, BundlePlanReportsInfeasibleCeiling) {
    PlanRequest request;
    request.base = base_eval();
    request.variable = PlanRequest::Variable::kBundleSize;
    request.target_unavailability = 1.0e-12;
    request.max_bundle = 2;  // nowhere near enough

    const PlanOutcome outcome = serve::plan_bundle_size(request);
    EXPECT_FALSE(outcome.feasible);
    EXPECT_EQ(outcome.bundle, 2U);  // the ceiling, with its achieved result
    EXPECT_GT(outcome.achieved.unavailability, request.target_unavailability);
    EXPECT_EQ(outcome.evaluations, 2U);
}

TEST(ServePlanning, SeedUptimePlanMeetsTargetTightly) {
    PlanRequest request;
    request.base = base_eval();
    request.variable = PlanRequest::Variable::kSeedUptime;
    // A modest target keeps the answer (and with it the O((lambda*u)^2)
    // evaluator cost) small; tightness is what's under test, not scale.
    request.target_unavailability = 0.05;
    request.lo = 1.0e-3;
    request.hi = 1.0e5;

    const PlanOutcome outcome = serve::plan_seed_uptime(request);
    ASSERT_TRUE(outcome.feasible);
    EXPECT_LE(outcome.achieved.unavailability, request.target_unavailability);
    EXPECT_GT(outcome.value, request.lo);
    EXPECT_LT(outcome.value, request.hi);

    // Tightness: a slightly smaller u misses the target (unavailability is
    // monotone decreasing in u).
    EvalRequest below = request.base;
    below.params.publisher_residence = outcome.value * 0.99;
    EXPECT_GT(serve::evaluate_model(below).unavailability,
              request.target_unavailability);
}

TEST(ServePlanning, PublisherBudgetPlanMeetsTargetTightly) {
    PlanRequest request;
    request.base = base_eval();
    request.variable = PlanRequest::Variable::kPublisherBudget;
    request.target_unavailability = 1.0e-3;
    request.lo = 1.0e-9;
    request.hi = 1.0e3;

    const PlanOutcome outcome = serve::run_plan(request);
    ASSERT_TRUE(outcome.feasible);
    EXPECT_LE(outcome.achieved.unavailability, request.target_unavailability);

    EvalRequest below = request.base;
    below.params.publisher_arrival_rate = outcome.value * 0.99;
    EXPECT_GT(serve::evaluate_model(below).unavailability,
              request.target_unavailability);
}

TEST(ServePlanning, BisectionIsFeasibleImmediatelyAtLo) {
    PlanRequest request;
    request.base = base_eval();
    request.variable = PlanRequest::Variable::kSeedUptime;
    request.target_unavailability = 0.999;  // trivially met
    request.lo = 100.0;
    request.hi = 1.0e5;

    const PlanOutcome outcome = serve::plan_seed_uptime(request);
    ASSERT_TRUE(outcome.feasible);
    EXPECT_DOUBLE_EQ(outcome.value, request.lo);
    EXPECT_EQ(outcome.evaluations, 1U);  // the expansion never ran
}

TEST(ServePlanning, BisectionReportsInfeasibleBracket) {
    PlanRequest request;
    request.base = base_eval();
    request.variable = PlanRequest::Variable::kSeedUptime;
    request.target_unavailability = 1.0e-6;
    request.lo = 1.0;
    request.hi = 10.0;  // far too small a stay to reach 1e-6

    const PlanOutcome outcome = serve::plan_seed_uptime(request);
    EXPECT_FALSE(outcome.feasible);
    EXPECT_DOUBLE_EQ(outcome.value, request.hi);
    EXPECT_GT(outcome.achieved.unavailability, request.target_unavailability);
}

TEST(ServePlanning, BisectionCostTracksAnswerNotCeiling) {
    // The expansion brackets upward from lo, so a huge hi costs nothing
    // extra when the answer is small. (This is the guard against the
    // O((lambda*K*u)^2) evaluator cost: only infeasible targets ever pay
    // for an evaluation at hi.)
    PlanRequest request;
    request.base = base_eval();
    request.variable = PlanRequest::Variable::kSeedUptime;
    request.target_unavailability = 0.02;
    request.lo = 1.0e-3;
    request.hi = 1.0e5;

    const PlanOutcome small_hi = serve::plan_seed_uptime(request);
    request.hi = 3.0e5;  // triple the ceiling
    const PlanOutcome large_hi = serve::plan_seed_uptime(request);
    ASSERT_TRUE(small_hi.feasible);
    ASSERT_TRUE(large_hi.feasible);
    EXPECT_NEAR(large_hi.value, small_hi.value, 1e-6 * small_hi.value);
    EXPECT_EQ(large_hi.evaluations, small_hi.evaluations);
}

TEST(ServePlanning, PlansAreDeterministic) {
    PlanRequest request;
    request.base = base_eval();
    request.variable = PlanRequest::Variable::kPublisherBudget;
    request.target_unavailability = 1.0e-4;
    request.lo = 1.0e-9;
    request.hi = 1.0e3;

    const PlanOutcome first = serve::run_plan(request);
    const PlanOutcome second = serve::run_plan(request);
    EXPECT_EQ(first.value, second.value);
    EXPECT_EQ(first.evaluations, second.evaluations);
    EXPECT_EQ(first.achieved.unavailability, second.achieved.unavailability);
}

}  // namespace
