// Request schema of the planning service: strict member validation, range
// checks, defaults, lane classification, and the canonical cache keys
// (satellite: textually different but semantically equal requests must
// produce byte-equal keys).
#include "serve/request.hpp"

#include <gtest/gtest.h>

#include <string>

namespace serve = swarmavail::serve;
using serve::JsonValue;
using serve::Request;
using serve::RequestPolicy;
using serve::ServeError;
using serve::Verb;

namespace {

JsonValue parse_payload(const std::string& text) {
    JsonValue value;
    std::string error;
    EXPECT_TRUE(serve::parse_json(text, value, &error)) << error;
    return value;
}

Request request_ok(const std::string& text) {
    Request out;
    ServeError error;
    const JsonValue payload = parse_payload(text);
    EXPECT_TRUE(serve::parse_request(payload, RequestPolicy{}, out, error))
        << error.code << ": " << error.message << " in " << text;
    return out;
}

ServeError request_error(const std::string& text) {
    Request out;
    ServeError error;
    const JsonValue payload = parse_payload(text);
    EXPECT_FALSE(serve::parse_request(payload, RequestPolicy{}, out, error))
        << "accepted: " << text;
    EXPECT_FALSE(error.code.empty());
    return error;
}

const std::string kEval =
    "{\"verb\":\"EVAL\",\"lambda\":2,\"size\":1,\"mu\":1.25,\"r\":0.05,\"u\":300}";

TEST(ServeRequest, ParsesPingWithAndWithoutId) {
    Request ping = request_ok("{\"verb\":\"PING\"}");
    EXPECT_EQ(ping.verb, Verb::kPing);
    EXPECT_FALSE(ping.has_id);

    ping = request_ok("{\"verb\":\"PING\",\"id\":42}");
    EXPECT_TRUE(ping.has_id);
    EXPECT_EQ(ping.id, 42U);
}

TEST(ServeRequest, ParsesEvalWithDefaults) {
    const Request req = request_ok(kEval);
    EXPECT_EQ(req.verb, Verb::kEval);
    EXPECT_DOUBLE_EQ(req.eval.params.peer_arrival_rate, 2.0);
    EXPECT_DOUBLE_EQ(req.eval.params.publisher_residence, 300.0);
    EXPECT_EQ(req.eval.bundle, 1U);
    EXPECT_EQ(req.eval.scaling, swarmavail::model::PublisherScaling::kConstant);
    EXPECT_EQ(req.eval.model, serve::AvailabilityModel::kImpatient);
}

TEST(ServeRequest, RejectsUnknownAndMissingMembers) {
    ServeError error = request_error(
        "{\"verb\":\"EVAL\",\"lambda\":2,\"size\":1,\"mu\":1.25,\"r\":0.05,"
        "\"u\":300,\"lambada\":1}");
    EXPECT_EQ(error.code, serve::error_code::kBadRequest);
    EXPECT_NE(error.message.find("unknown member"), std::string::npos);

    error = request_error("{\"verb\":\"EVAL\",\"lambda\":2}");
    EXPECT_EQ(error.code, serve::error_code::kBadRequest);
    EXPECT_NE(error.message.find("missing required"), std::string::npos);

    // PING accepts only verb/id.
    error = request_error("{\"verb\":\"PING\",\"lambda\":2}");
    EXPECT_EQ(error.code, serve::error_code::kBadRequest);
}

TEST(ServeRequest, RejectsUnknownVerbAndOutOfRangeValues) {
    EXPECT_EQ(request_error("{\"verb\":\"NOPE\"}").code,
              serve::error_code::kUnknownVerb);
    EXPECT_EQ(request_error("{}").code, serve::error_code::kBadRequest);

    EXPECT_EQ(request_error("{\"verb\":\"EVAL\",\"lambda\":-1,\"size\":1,"
                            "\"mu\":1,\"r\":1,\"u\":1}")
                  .code,
              serve::error_code::kOutOfRange);
    EXPECT_EQ(request_error("{\"verb\":\"EVAL\",\"lambda\":0,\"size\":1,"
                            "\"mu\":1,\"r\":1,\"u\":1}")
                  .code,
              serve::error_code::kOutOfRange);  // lo is exclusive
    EXPECT_EQ(request_error("{\"verb\":\"EVAL\",\"lambda\":1e13,\"size\":1,"
                            "\"mu\":1,\"r\":1,\"u\":1}")
                  .code,
              serve::error_code::kOutOfRange);  // above policy.max_rate
}

TEST(ServeRequest, IntegerFieldsMustBeExactWholeNumbers) {
    const std::string base =
        "{\"verb\":\"EVAL\",\"lambda\":2,\"size\":1,\"mu\":1.25,\"r\":0.05,"
        "\"u\":300,\"k\":";
    EXPECT_EQ(request_ok(base + "4}").eval.bundle, 4U);
    EXPECT_EQ(request_error(base + "4.5}").code, serve::error_code::kOutOfRange);
    EXPECT_EQ(request_error(base + "0}").code, serve::error_code::kOutOfRange);
    EXPECT_EQ(request_error(base + "1e300}").code, serve::error_code::kOutOfRange);
    // id must sit in the exact-double window too (2^53 + 1 itself would
    // round to 2^53 inside the JSON double and parse clean, so probe with
    // a value far beyond the window).
    EXPECT_EQ(request_error("{\"verb\":\"PING\",\"id\":1e16}").code,
              serve::error_code::kOutOfRange);
}

TEST(ServeRequest, IdIsParsedBeforeVerbBodySoErrorsCanEchoIt) {
    Request out;
    ServeError error;
    const JsonValue payload = parse_payload(
        "{\"verb\":\"EVAL\",\"id\":9,\"lambda\":-1,\"size\":1,\"mu\":1,"
        "\"r\":1,\"u\":1}");
    EXPECT_FALSE(serve::parse_request(payload, RequestPolicy{}, out, error));
    EXPECT_TRUE(out.has_id);
    EXPECT_EQ(out.id, 9U);
}

TEST(ServeRequest, PlanDefaultsAndValidation) {
    const std::string plan_k =
        "{\"verb\":\"PLAN\",\"lambda\":2,\"size\":1,\"mu\":1.25,\"r\":0.05,"
        "\"u\":300,\"variable\":\"k\",\"target\":0.01}";
    Request req = request_ok(plan_k);
    EXPECT_EQ(req.plan.variable, serve::PlanRequest::Variable::kBundleSize);
    EXPECT_DOUBLE_EQ(req.plan.target_unavailability, 0.01);
    EXPECT_EQ(req.plan.max_bundle, 4096U);

    // The u plan's default bracket is deliberately modest (the evaluator
    // costs O((lambda*K*u)^2)); bigger searches must state "hi".
    req = request_ok(
        "{\"verb\":\"PLAN\",\"lambda\":2,\"size\":1,\"mu\":1.25,\"r\":0.05,"
        "\"u\":300,\"variable\":\"u\",\"target\":0.01}");
    EXPECT_DOUBLE_EQ(req.plan.lo, 1.0e-3);
    EXPECT_DOUBLE_EQ(req.plan.hi, 1.0e5);

    EXPECT_EQ(request_error("{\"verb\":\"PLAN\",\"lambda\":2,\"size\":1,"
                            "\"mu\":1.25,\"r\":0.05,\"u\":300}")
                  .code,
              serve::error_code::kBadRequest);  // variable/target required
    EXPECT_EQ(request_error(
                  "{\"verb\":\"PLAN\",\"lambda\":2,\"size\":1,\"mu\":1.25,"
                  "\"r\":0.05,\"u\":300,\"variable\":\"u\",\"target\":0.01,"
                  "\"lo\":10,\"hi\":1}")
                  .code,
              serve::error_code::kOutOfRange);  // lo >= hi
    EXPECT_EQ(request_error(
                  "{\"verb\":\"PLAN\",\"lambda\":2,\"size\":1,\"mu\":1.25,"
                  "\"r\":0.05,\"u\":300,\"variable\":\"u\",\"target\":0.01,"
                  "\"model\":\"peers_publishers\"}")
                  .code,
              serve::error_code::kBadRequest);  // u is meaningless there
    EXPECT_EQ(request_error(
                  "{\"verb\":\"PLAN\",\"lambda\":2,\"size\":1,\"mu\":1.25,"
                  "\"r\":0.05,\"u\":300,\"variable\":\"k\",\"target\":1}")
                  .code,
              serve::error_code::kOutOfRange);  // target must be < 1
}

TEST(ServeRequest, RefineDefaultsComeFromPolicyCatalog) {
    const Request req = request_ok("{\"verb\":\"REFINE\"}");
    EXPECT_EQ(req.refine.catalog.num_files, 64U);
    EXPECT_DOUBLE_EQ(req.refine.catalog.zipf_exponent, 1.0);
    EXPECT_EQ(req.refine.policy, "fixedk");
    EXPECT_EQ(req.refine.bundle, 4U);
    EXPECT_EQ(req.refine.seed, 1U);
    EXPECT_TRUE(req.refine.patient_peers);

    const Request partial =
        request_ok("{\"verb\":\"REFINE\",\"catalog\":{\"files\":8},\"k\":2,"
                   "\"seed\":7}");
    EXPECT_EQ(partial.refine.catalog.num_files, 8U);
    EXPECT_DOUBLE_EQ(partial.refine.catalog.zipf_exponent, 1.0);  // kept default
    EXPECT_EQ(partial.refine.bundle, 2U);
    EXPECT_EQ(partial.refine.seed, 7U);
}

TEST(ServeRequest, RefineRejectsBadShapes) {
    EXPECT_EQ(request_error("{\"verb\":\"REFINE\",\"files\":8}").code,
              serve::error_code::kBadRequest);  // files lives under "catalog"
    EXPECT_EQ(request_error("{\"verb\":\"REFINE\",\"catalog\":3}").code,
              serve::error_code::kBadRequest);
    EXPECT_EQ(request_error("{\"verb\":\"REFINE\",\"policy\":\"magic\"}").code,
              serve::error_code::kBadRequest);
    EXPECT_EQ(
        request_error("{\"verb\":\"REFINE\",\"catalog\":{\"files\":4},\"k\":9}")
            .code,
        serve::error_code::kOutOfRange);  // bundle cannot exceed catalog size
    EXPECT_EQ(request_error("{\"verb\":\"REFINE\",\"stop_ci\":2}").code,
              serve::error_code::kOutOfRange);
    EXPECT_EQ(request_error("{\"verb\":\"REFINE\",\"patient\":1}").code,
              serve::error_code::kBadRequest);  // boolean, not number
}

TEST(ServeRequest, LaneClassification) {
    EXPECT_EQ(serve::lane_of(Verb::kRefine), serve::Lane::kSim);
    EXPECT_EQ(serve::lane_of(Verb::kEval), serve::Lane::kModel);
    EXPECT_EQ(serve::classify_lane("{\"verb\":\"REFINE\",\"k\":2}"),
              serve::Lane::kSim);
    EXPECT_EQ(serve::classify_lane("{ \"verb\" : \"REFINE\" }"), serve::Lane::kSim);
    EXPECT_EQ(serve::classify_lane(kEval), serve::Lane::kModel);
    EXPECT_EQ(serve::classify_lane("not json at all"), serve::Lane::kModel);
}

// Satellite: canonical keys. Two textually different but semantically
// equal requests must map to the same cache key, byte for byte.
TEST(ServeRequest, CanonicalEvalKeyIsTextInvariant) {
    // Different member order, explicit defaults vs omitted, different
    // number spellings, an id on one side only.
    const Request a = request_ok(
        "{\"verb\":\"EVAL\",\"lambda\":2,\"size\":1,\"mu\":1.25,\"r\":0.05,"
        "\"u\":300}");
    const Request b = request_ok(
        "{\"id\":77,\"u\":3e2,\"r\":5e-2,\"mu\":1.25,\"size\":1.0,"
        "\"lambda\":2,\"k\":1,\"scaling\":\"constant\","
        "\"model\":\"impatient\",\"verb\":\"EVAL\"}");
    EXPECT_EQ(serve::canonical_eval_key(a.eval), serve::canonical_eval_key(b.eval));

    const Request c = request_ok(
        "{\"verb\":\"EVAL\",\"lambda\":2,\"size\":1,\"mu\":1.25,\"r\":0.05,"
        "\"u\":300,\"k\":2}");
    EXPECT_NE(serve::canonical_eval_key(a.eval), serve::canonical_eval_key(c.eval));
}

TEST(ServeRequest, CanonicalPlanAndRefineKeysAreTextInvariant) {
    const Request a = request_ok(
        "{\"verb\":\"PLAN\",\"lambda\":2,\"size\":1,\"mu\":1.25,\"r\":0.05,"
        "\"u\":300,\"variable\":\"k\",\"target\":0.01}");
    const Request b = request_ok(
        "{\"target\":1e-2,\"variable\":\"k\",\"max_k\":4096,\"u\":300,"
        "\"r\":0.05,\"mu\":1.25,\"size\":1,\"lambda\":2,\"verb\":\"PLAN\","
        "\"id\":3}");
    EXPECT_EQ(serve::canonical_plan_key(a.plan), serve::canonical_plan_key(b.plan));
    EXPECT_NE(serve::canonical_plan_key(a.plan),
              serve::canonical_eval_key(a.plan.base));  // separate key spaces

    const Request r1 = request_ok("{\"verb\":\"REFINE\",\"catalog\":{}}");
    const Request r2 = request_ok(
        "{\"verb\":\"REFINE\",\"seed\":1,\"k\":4,\"policy\":\"fixedk\","
        "\"catalog\":{\"files\":64,\"alpha\":1.0,\"u\":1000,\"r\":0.05}}");
    EXPECT_EQ(serve::canonical_refine_key(r1.refine),
              serve::canonical_refine_key(r2.refine));

    const Request r3 = request_ok("{\"verb\":\"REFINE\",\"seed\":2}");
    EXPECT_NE(serve::canonical_refine_key(r1.refine),
              serve::canonical_refine_key(r3.refine));
}

TEST(ServeRequest, VerbNamesAndLabelsAreStable) {
    EXPECT_EQ(serve::verb_name(Verb::kRefine), "REFINE");
    EXPECT_EQ(serve::verb_label(Verb::kRefine), "refine");
    EXPECT_EQ(serve::verb_name(Verb::kStats), "STATS");
    EXPECT_EQ(serve::verb_label(Verb::kPing), "ping");
}

}  // namespace
