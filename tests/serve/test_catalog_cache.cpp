// Single-flight cache and the two-lane queue: warm-state semantics
// (one computation per key, failures never cached, FIFO eviction of
// completed entries) and the lane-affinity scheduling property.
#include "serve/catalog_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/lanes.hpp"

namespace serve = swarmavail::serve;
using serve::Lane;
using serve::LaneQueues;
using serve::PopMode;
using serve::SingleFlightCache;

namespace {

TEST(ServeCache, ComputesOnMissAndReusesOnHit) {
    SingleFlightCache<std::string> cache(8);
    int computed = 0;
    const auto compute = [&computed] {
        ++computed;
        return std::string("value");
    };
    EXPECT_EQ(cache.get_or_compute("a", compute), "value");
    EXPECT_EQ(cache.get_or_compute("a", compute), "value");
    EXPECT_EQ(computed, 1);
    EXPECT_EQ(cache.hits(), 1U);
    EXPECT_EQ(cache.misses(), 1U);
    EXPECT_EQ(cache.size(), 1U);
}

TEST(ServeCache, SingleFlightConcurrentSameKeyComputesOnce) {
    SingleFlightCache<std::string> cache(8);
    std::atomic<int> computed{0};
    std::atomic<int> started{0};
    constexpr int kThreads = 8;

    std::vector<std::thread> threads;
    std::vector<std::string> results(kThreads);
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            started.fetch_add(1);
            while (started.load() < kThreads) {
                std::this_thread::yield();  // maximize same-key contention
            }
            results[static_cast<std::size_t>(i)] =
                cache.get_or_compute("shared", [&] {
                    std::this_thread::sleep_for(std::chrono::milliseconds(20));
                    computed.fetch_add(1);
                    return std::string("once");
                });
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    EXPECT_EQ(computed.load(), 1);
    for (const std::string& r : results) {
        EXPECT_EQ(r, "once");
    }
    EXPECT_EQ(cache.misses(), 1U);
    EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ServeCache, FailedComputationIsNotCached) {
    SingleFlightCache<std::string> cache(8);
    int attempts = 0;
    const auto failing = [&attempts]() -> std::string {
        ++attempts;
        throw std::runtime_error("transient");
    };
    EXPECT_THROW(cache.get_or_compute("k", failing), std::runtime_error);
    EXPECT_EQ(cache.size(), 0U);  // the key was forgotten

    // The next request retries and can succeed.
    EXPECT_EQ(cache.get_or_compute("k",
                                   [&attempts] {
                                       ++attempts;
                                       return std::string("recovered");
                                   }),
              "recovered");
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(cache.misses(), 2U);
}

TEST(ServeCache, EvictsCompletedEntriesFifo) {
    SingleFlightCache<std::string> cache(2);
    int computed = 0;
    const auto make = [&computed](const std::string& v) {
        return [&computed, v] {
            ++computed;
            return v;
        };
    };
    cache.get_or_compute("a", make("1"));
    cache.get_or_compute("b", make("2"));
    cache.get_or_compute("c", make("3"));  // evicts "a" (oldest completed)
    EXPECT_EQ(cache.size(), 2U);
    cache.get_or_compute("b", make("2"));  // still resident
    EXPECT_EQ(cache.hits(), 1U);
    cache.get_or_compute("a", make("1"));  // recomputed after eviction
    EXPECT_EQ(computed, 4);
}

TEST(ServeCache, CountsEvictionsAndReportsLookupKinds) {
    SingleFlightCache<std::string> cache(2);
    serve::CacheLookup lookup = serve::CacheLookup::kHit;
    const auto value = [] { return std::string("v"); };
    cache.get_or_compute("a", value, &lookup);
    EXPECT_EQ(lookup, serve::CacheLookup::kMiss);
    cache.get_or_compute("a", value, &lookup);
    EXPECT_EQ(lookup, serve::CacheLookup::kHit);
    EXPECT_EQ(cache.evictions(), 0U);
    cache.get_or_compute("b", value);
    cache.get_or_compute("c", value);  // evicts "a"
    EXPECT_EQ(cache.evictions(), 1U);
    cache.get_or_compute("d", value);  // evicts "b"
    EXPECT_EQ(cache.evictions(), 2U);
    EXPECT_EQ(cache.size(), 2U);
    EXPECT_EQ(cache.max_entries(), 2U);
}

TEST(ServeCache, CountsCoalescedWaitersAsSingleFlightJoins) {
    SingleFlightCache<std::string> cache(8);
    std::atomic<bool> release{false};
    std::atomic<int> waiting{0};
    constexpr int kWaiters = 4;

    std::thread owner([&] {
        cache.get_or_compute("k", [&] {
            // Hold the computation open until every waiter has joined it.
            const auto deadline =
                std::chrono::steady_clock::now() + std::chrono::seconds(5);
            while (!release.load() && std::chrono::steady_clock::now() < deadline) {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            return std::string("slow");
        });
    });
    std::vector<std::thread> waiters;
    std::vector<serve::CacheLookup> lookups(
        kWaiters, serve::CacheLookup::kMiss);
    waiters.reserve(kWaiters);
    for (int i = 0; i < kWaiters; ++i) {
        waiters.emplace_back([&, i] {
            while (cache.size() == 0) {
                std::this_thread::yield();  // wait for the entry to exist
            }
            waiting.fetch_add(1);
            cache.get_or_compute(
                "k", [] { return std::string("never"); },
                &lookups[static_cast<std::size_t>(i)]);
        });
    }
    while (waiting.load() < kWaiters) {
        std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.store(true);
    owner.join();
    for (std::thread& t : waiters) {
        t.join();
    }
    // Every waiter that observed the in-flight entry reports kCoalesced
    // and bumps the counter; stragglers that arrived after completion are
    // plain hits. All of them count as hits.
    EXPECT_EQ(cache.misses(), 1U);
    EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kWaiters));
    std::uint64_t coalesced_lookups = 0;
    for (const serve::CacheLookup lookup : lookups) {
        EXPECT_NE(lookup, serve::CacheLookup::kMiss);
        coalesced_lookups += lookup == serve::CacheLookup::kCoalesced ? 1 : 0;
    }
    EXPECT_EQ(cache.coalesced(), coalesced_lookups);
}

TEST(ServeCache, RefineOutcomeRoundTripsThroughCatalogCache) {
    serve::CatalogCache cache(4);
    serve::RefineOutcome outcome;
    outcome.arrivals = 100;
    outcome.fingerprint = 0xdeadbeefULL;
    outcome.swarms = 3;
    const serve::RefineOutcome got =
        cache.get_or_compute("key", [&outcome] { return outcome; });
    EXPECT_EQ(got.arrivals, 100U);
    EXPECT_EQ(got.fingerprint, 0xdeadbeefULL);
    EXPECT_EQ(got.swarms, 3U);
}

TEST(ServeLanes, FullLaneRejectsWithoutBlocking) {
    LaneQueues<int> queues(2);
    EXPECT_TRUE(queues.try_push(Lane::kModel, 1));
    EXPECT_TRUE(queues.try_push(Lane::kModel, 2));
    EXPECT_FALSE(queues.try_push(Lane::kModel, 3));  // model lane full
    EXPECT_TRUE(queues.try_push(Lane::kSim, 4));     // sim lane independent
    EXPECT_EQ(queues.depth(Lane::kModel), 2U);
    EXPECT_EQ(queues.depth(Lane::kSim), 1U);
}

TEST(ServeLanes, PopModesRespectLaneAffinity) {
    LaneQueues<int> queues(8);
    ASSERT_TRUE(queues.try_push(Lane::kSim, 100));
    ASSERT_TRUE(queues.try_push(Lane::kModel, 1));

    int out = 0;
    // kPreferSim drains the sim lane first.
    ASSERT_TRUE(queues.pop(PopMode::kPreferSim, out));
    EXPECT_EQ(out, 100);
    // kModelOnly takes model work...
    ASSERT_TRUE(queues.pop(PopMode::kModelOnly, out));
    EXPECT_EQ(out, 1);

    // ...but never sim work: with only sim items queued, a kModelOnly pop
    // must still be blocked when the queue closes.
    ASSERT_TRUE(queues.try_push(Lane::kSim, 200));
    std::thread closer([&queues] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        queues.close();
    });
    EXPECT_FALSE(queues.pop(PopMode::kModelOnly, out));
    closer.join();
    // The sim item is still drainable after close().
    ASSERT_TRUE(queues.pop(PopMode::kPreferSim, out));
    EXPECT_EQ(out, 200);
}

TEST(ServeLanes, CloseDrainsQueuedItemsThenReturnsFalse) {
    LaneQueues<int> queues(8);
    ASSERT_TRUE(queues.try_push(Lane::kModel, 1));
    ASSERT_TRUE(queues.try_push(Lane::kSim, 2));
    queues.close();
    EXPECT_FALSE(queues.try_push(Lane::kModel, 3));  // intake stopped

    int out = 0;
    ASSERT_TRUE(queues.pop(PopMode::kPreferModel, out));
    EXPECT_EQ(out, 1);
    ASSERT_TRUE(queues.pop(PopMode::kPreferModel, out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(queues.pop(PopMode::kPreferModel, out));  // drained + closed
    EXPECT_TRUE(queues.empty());
}

TEST(ServeLanes, SimPushAlwaysWakesASimCapableWorker) {
    // Regression for a lost wakeup: waiters are mode-selective, so a
    // notify_one after a sim push could land on the kModelOnly worker,
    // which cannot take the item and re-waits — swallowing the only
    // notification while the kPreferSim worker sleeps. Each round blocks
    // both workers, pushes one sim item, and requires prompt consumption.
    LaneQueues<int> queues(64);
    std::atomic<int> consumed{0};
    std::thread model_worker([&] {
        int item = 0;
        while (queues.pop(PopMode::kModelOnly, item)) {
        }
    });
    std::thread sim_worker([&] {
        int item = 0;
        while (queues.pop(PopMode::kPreferSim, item)) {
            consumed.fetch_add(1);
        }
    });
    for (int round = 0; round < 20; ++round) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));  // re-block
        ASSERT_TRUE(queues.try_push(Lane::kSim, round));
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (consumed.load() <= round &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ASSERT_EQ(consumed.load(), round + 1) << "sim push lost its wakeup";
    }
    queues.close();
    model_worker.join();
    sim_worker.join();
}

}  // namespace
