// Request-lifecycle spans (serve/span.hpp): record serialization round
// trips, ring-buffer overwrite and drain order, the slow-query funnel,
// and the RequestSpans scratch the serving path fills.
#include "serve/span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace serve = swarmavail::serve;
using serve::JsonlSpanSink;
using serve::MemorySpanSink;
using serve::RequestSpans;
using serve::SpanCacheOutcome;
using serve::SpanHub;
using serve::SpanHubConfig;
using serve::SpanRecord;
using serve::SpanStage;

namespace {

SpanRecord make_record(std::uint64_t request, SpanStage stage, double t0,
                       double t1, std::uint64_t bytes = 0) {
    SpanRecord record;
    record.request = request;
    record.connection = request;  // good enough for tests
    record.t_start = t0;
    record.t_end = t1;
    record.bytes = bytes;
    record.stage = static_cast<std::uint16_t>(stage);
    record.verb = 1;
    record.lane = 0;
    record.worker = 1;
    record.cache = static_cast<std::uint32_t>(SpanCacheOutcome::kHit);
    return record;
}

TEST(SpanNames, StageAndCacheOutcomeNamesRoundTrip) {
    for (std::size_t s = 0; s < serve::kSpanStageCount; ++s) {
        const auto stage = static_cast<SpanStage>(s);
        SpanStage parsed = SpanStage::kAccept;
        ASSERT_TRUE(serve::span_stage_from_name(serve::span_stage_name(stage),
                                                parsed));
        EXPECT_EQ(parsed, stage);
    }
    SpanStage stage = SpanStage::kAccept;
    EXPECT_FALSE(serve::span_stage_from_name("not-a-stage", stage));

    for (std::size_t o = 0; o < serve::kSpanCacheOutcomeCount; ++o) {
        const auto outcome = static_cast<SpanCacheOutcome>(o);
        SpanCacheOutcome parsed = SpanCacheOutcome::kNone;
        ASSERT_TRUE(serve::span_cache_outcome_from_name(
            serve::span_cache_outcome_name(outcome), parsed));
        EXPECT_EQ(parsed, outcome);
    }
}

TEST(SpanJsonl, RecordsRoundTripBitForBit) {
    const std::vector<SpanRecord> records = {
        make_record(1, SpanStage::kDecode, 0.25, 0.5, 69),
        make_record(1, SpanStage::kParse, 0.5, 1.0 / 3.0, 69),
        make_record(2, SpanStage::kWrite, 1.0e-7, 12345.678901234567, 434),
    };
    std::ostringstream out;
    JsonlSpanSink sink(out);
    sink.write(records.data(), records.size());
    sink.finish();

    std::istringstream in(out.str());
    const std::vector<SpanRecord> parsed = serve::read_spans_jsonl(in);
    ASSERT_EQ(parsed.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(parsed[i], records[i]) << "record " << i;
    }
}

TEST(SpanJsonl, MalformedLinesAreRejectedWithLineNumbers) {
    for (const char* bad : {
             "not json\n",
             "{\"request\":1}\n",  // missing fields
             "{\"request\":1,\"conn\":1,\"stage\":\"nope\",\"verb\":1,"
             "\"lane\":0,\"worker\":1,\"t0\":0,\"t1\":0,\"bytes\":0,"
             "\"cache\":\"hit\"}\n",  // unknown stage name
         }) {
        std::istringstream in(bad);
        EXPECT_THROW(static_cast<void>(serve::read_spans_jsonl(in)),
                     std::invalid_argument)
            << bad;
    }
}

TEST(SpanHubTest, DrainMergesRingsInIndexOrderAndClears) {
    SpanHubConfig config;
    config.rings = 3;
    config.ring_capacity = 8;
    SpanHub hub(config);
    hub.set_enabled(true);

    // Emit out of ring order; the drain must come back 0, 1, 2.
    hub.emit(2, make_record(30, SpanStage::kWrite, 3.0, 3.1));
    hub.emit(0, make_record(10, SpanStage::kAccept, 1.0, 1.0));
    hub.emit(1, make_record(20, SpanStage::kDecode, 2.0, 2.1));
    hub.emit(1, make_record(21, SpanStage::kParse, 2.1, 2.2));

    MemorySpanSink sink;
    hub.drain(sink);
    ASSERT_EQ(sink.records().size(), 4U);
    EXPECT_EQ(sink.records()[0].request, 10U);
    EXPECT_EQ(sink.records()[1].request, 20U);
    EXPECT_EQ(sink.records()[2].request, 21U);
    EXPECT_EQ(sink.records()[3].request, 30U);
    EXPECT_EQ(hub.records_emitted(), 4U);

    // A second drain finds the rings empty.
    MemorySpanSink empty;
    hub.drain(empty);
    EXPECT_TRUE(empty.records().empty());
}

TEST(SpanHubTest, RingOverwritesOldestAndCountsDrops) {
    SpanHubConfig config;
    config.rings = 1;
    config.ring_capacity = 4;
    SpanHub hub(config);
    hub.set_enabled(true);

    for (std::uint64_t i = 1; i <= 6; ++i) {
        hub.emit(0, make_record(i, SpanStage::kCompute,
                                static_cast<double>(i),
                                static_cast<double>(i) + 0.5));
    }
    EXPECT_EQ(hub.records_emitted(), 6U);
    EXPECT_EQ(hub.records_dropped(), 2U);

    MemorySpanSink sink;
    hub.drain(sink);
    ASSERT_EQ(sink.records().size(), 4U);
    // Oldest surviving record first: 3, 4, 5, 6.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(sink.records()[i].request, i + 3) << "position " << i;
    }
}

TEST(SpanHubTest, SlowRequestsReachTheSlowSinkAsOneBlock) {
    MemorySpanSink slow;
    SpanHubConfig config;
    config.rings = 2;
    config.ring_capacity = 16;
    config.slow_threshold_s = 0.5;
    SpanHub hub(config, &slow);
    hub.set_enabled(true);

    const SpanRecord fast[] = {
        make_record(1, SpanStage::kParse, 0.0, 0.1),
        make_record(1, SpanStage::kWrite, 0.1, 0.2),
    };
    hub.finish_request(1, fast, 2, 0.2);  // under the threshold
    EXPECT_TRUE(slow.records().empty());
    EXPECT_EQ(hub.slow_requests(), 0U);

    const SpanRecord offending[] = {
        make_record(2, SpanStage::kParse, 1.0, 1.1),
        make_record(2, SpanStage::kCompute, 1.1, 1.7),
        make_record(2, SpanStage::kWrite, 1.7, 1.8),
    };
    hub.finish_request(1, offending, 3, 0.8);  // at/over the threshold
    ASSERT_EQ(slow.records().size(), 3U);
    EXPECT_EQ(hub.slow_requests(), 1U);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(slow.records()[i], offending[i]);
    }

    // The ring still retains everything for a normal drain.
    MemorySpanSink all;
    hub.drain(all);
    EXPECT_EQ(all.records().size(), 5U);
}

TEST(SpanHubTest, RequestIndicesAreMonotoneFromOne) {
    SpanHub hub(SpanHubConfig{});
    EXPECT_EQ(hub.next_request(), 1U);
    EXPECT_EQ(hub.next_request(), 2U);
    EXPECT_EQ(hub.next_request(), 3U);
}

TEST(RequestSpansTest, TracksStagesBytesAndCacheOutcome) {
    RequestSpans spans;
    spans.set_epoch(std::chrono::steady_clock::now());
    EXPECT_FALSE(spans.has(SpanStage::kParse));

    spans.begin(SpanStage::kParse);
    spans.end(SpanStage::kParse, 42);
    EXPECT_TRUE(spans.has(SpanStage::kParse));
    EXPECT_GE(spans.duration(SpanStage::kParse), 0.0);
    EXPECT_EQ(spans.stage_bytes[static_cast<std::size_t>(SpanStage::kParse)],
              42U);

    spans.note(SpanStage::kQueueWait, 1.0, 1.5);
    EXPECT_TRUE(spans.has(SpanStage::kQueueWait));
    EXPECT_DOUBLE_EQ(spans.duration(SpanStage::kQueueWait), 0.5);
    EXPECT_DOUBLE_EQ(spans.duration(SpanStage::kCompute), 0.0);  // unseen

    spans.set_cache(SpanCacheOutcome::kCoalesced);
    EXPECT_EQ(spans.cache,
              static_cast<std::uint32_t>(SpanCacheOutcome::kCoalesced));
}

TEST(SpanHubTest, ConcurrentEmittersAndDrainDoNotRace) {
    SpanHubConfig config;
    config.rings = 4;
    config.ring_capacity = 64;
    SpanHub hub(config);
    hub.set_enabled(true);

    std::vector<std::thread> emitters;
    emitters.reserve(3);
    for (std::size_t ring = 1; ring <= 3; ++ring) {
        emitters.emplace_back([&hub, ring] {
            for (std::uint64_t i = 0; i < 500; ++i) {
                hub.emit(ring, make_record(hub.next_request(),
                                           SpanStage::kCompute, 0.0, 1.0));
            }
        });
    }
    MemorySpanSink sink;
    for (int i = 0; i < 10; ++i) {
        hub.drain(sink);  // racing the emitters is the point
        std::this_thread::yield();
    }
    for (std::thread& t : emitters) {
        t.join();
    }
    hub.drain(sink);
    EXPECT_EQ(hub.records_emitted(), 1500U);
    EXPECT_EQ(sink.records().size() + hub.records_dropped(), 1500U);
}

}  // namespace
