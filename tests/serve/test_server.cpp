// PlanningServer end-to-end over loopback TCP: the wire protocol, the
// concurrent-correctness satellite (identical query streams must receive
// bit-identical answers — refinement fingerprints included — at every
// worker count), frame-error handling, and graceful drain.
//
// Test names carry "Planning" so the tsan CI leg's name filter picks the
// suite up alongside the engine concurrency suites.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "util/telemetry.hpp"

namespace serve = swarmavail::serve;
using serve::FrameDecoder;
using serve::PlanningServer;
using serve::ServerConfig;

namespace {

/// Minimal blocking loopback client for the frame protocol.
class TestClient {
 public:
    explicit TestClient(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0) << std::strerror(errno);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
                  0)
            << std::strerror(errno);
    }
    ~TestClient() {
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }
    TestClient(const TestClient&) = delete;
    TestClient& operator=(const TestClient&) = delete;

    void send_raw(std::string_view bytes) {
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::send(fd_, bytes.data() + sent,
                                     bytes.size() - sent, MSG_NOSIGNAL);
            ASSERT_GT(n, 0) << std::strerror(errno);
            sent += static_cast<std::size_t>(n);
        }
    }

    void send_request(std::string_view payload) {
        send_raw(serve::encode_frame(payload));
    }

    /// Half-closes the write side, signalling EOF to the server.
    void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

    /// Reads one response frame (empty string on connection close).
    std::string read_response() {
        std::string payload;
        std::string error;
        while (true) {
            switch (decoder_.next(payload, error)) {
                case FrameDecoder::Status::kFrame:
                    return payload;
                case FrameDecoder::Status::kError:
                    ADD_FAILURE() << "malformed response frame: " << error;
                    return {};
                case FrameDecoder::Status::kNeedMore:
                    break;
            }
            char buffer[4096];
            const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
            if (n <= 0) {
                return {};
            }
            decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
        }
    }

    std::string round_trip(std::string_view payload) {
        send_request(payload);
        return read_response();
    }

 private:
    int fd_ = -1;
    FrameDecoder decoder_;
};

ServerConfig small_config(std::size_t threads) {
    ServerConfig config;
    config.threads = threads;
    // Small default catalog so uncached REFINEs stay fast in tests.
    config.router.policy.default_catalog.num_files = 4;
    return config;
}

const std::string kPing = "{\"verb\":\"PING\",\"id\":1}";
const std::string kEval =
    "{\"verb\":\"EVAL\",\"id\":2,\"lambda\":2,\"size\":1,\"mu\":1.25,"
    "\"r\":0.05,\"u\":300}";
const std::string kPlan =
    "{\"verb\":\"PLAN\",\"id\":3,\"lambda\":2,\"size\":1,\"mu\":1.25,"
    "\"r\":0.05,\"u\":300,\"variable\":\"k\",\"target\":0.01}";
const std::string kRefine =
    "{\"verb\":\"REFINE\",\"id\":4,\"catalog\":{\"files\":4},\"k\":2,"
    "\"horizon\":2000,\"seed\":3}";

TEST(PlanningServerTest, SequentialConnectionsAlternatingLanesAreServed) {
    // Regression: with one model-only and one sim-preferring worker both
    // blocked on the queue, a sim push whose single notify_one landed on
    // the model-only worker was swallowed — the worker re-waited, the
    // sim-capable one slept on, and a lone REFINE after an EVAL hung
    // until the next push. try_push must wake every waiter.
    PlanningServer server(small_config(2));
    server.start();
    for (int round = 0; round < 3; ++round) {
        TestClient eval_client(server.port());
        EXPECT_NE(eval_client.round_trip(kEval).find("\"ok\":true"),
                  std::string::npos);
        TestClient refine_client(server.port());
        EXPECT_NE(refine_client.round_trip(kRefine).find("\"ok\":true"),
                  std::string::npos);
    }
    server.stop();
}

TEST(PlanningServerTest, AnswersPingOverLoopback) {
    PlanningServer server(small_config(2));
    server.start();
    ASSERT_TRUE(server.running());
    ASSERT_NE(server.port(), 0);

    TestClient client(server.port());
    const std::string response = client.round_trip(kPing);
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
    EXPECT_NE(response.find("\"id\":1"), std::string::npos);
    EXPECT_NE(response.find("swarmavail-planning"), std::string::npos);
    server.stop();
    EXPECT_EQ(server.connections_accepted(), 1U);
}

// The concurrent-correctness satellite: N concurrent clients replay one
// identical mixed query stream against servers at --threads 1, 2, and 4;
// every client at every thread count must read bit-identical response
// bytes, refinement fingerprints included.
TEST(PlanningServerTest, IdenticalStreamsGetBitIdenticalAnswersAcrossThreadCounts) {
    const std::vector<std::string> stream = {kPing,   kEval, kRefine, kPlan,
                                             kRefine, kEval, kPing};
    constexpr std::size_t kClients = 4;

    std::vector<std::vector<std::string>> per_thread_count;
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        PlanningServer server(small_config(threads));
        server.start();

        std::vector<std::vector<std::string>> replies(kClients);
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (std::size_t c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                TestClient client(server.port());
                for (const std::string& request : stream) {
                    replies[c].push_back(client.round_trip(request));
                }
            });
        }
        for (std::thread& t : clients) {
            t.join();
        }
        server.stop();

        for (std::size_t c = 1; c < kClients; ++c) {
            EXPECT_EQ(replies[c], replies[0])
                << "client " << c << " diverged at threads=" << threads;
        }
        ASSERT_FALSE(replies[0].empty());
        per_thread_count.push_back(replies[0]);
    }
    ASSERT_EQ(per_thread_count.size(), 3U);
    EXPECT_EQ(per_thread_count[1], per_thread_count[0])
        << "threads=2 diverged from threads=1";
    EXPECT_EQ(per_thread_count[2], per_thread_count[0])
        << "threads=4 diverged from threads=1";

    // And the refinement answer really carries a fingerprint.
    const std::string& refine_reply = per_thread_count[0][2];
    EXPECT_NE(refine_reply.find("\"fingerprint\":\""), std::string::npos)
        << refine_reply;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    EXPECT_EQ(refine_reply.find("\"fingerprint\":\"0000000000000000\""),
              std::string::npos);
#endif
}

TEST(PlanningServerTest, MalformedFrameGetsStructuredErrorBeforeClose) {
    PlanningServer server(small_config(1));
    server.start();

    TestClient client(server.port());
    client.send_raw("123456789\nnot a frame\n");  // 9-digit length prefix
    const std::string response = client.read_response();
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
    EXPECT_NE(response.find("bad-frame"), std::string::npos) << response;
    // The connection is dropped afterwards.
    EXPECT_EQ(client.read_response(), "");
    server.stop();
}

TEST(PlanningServerTest, TruncatedFrameAtEofGetsStructuredError) {
    PlanningServer server(small_config(1));
    server.start();

    TestClient client(server.port());
    client.send_raw("64\n{\"verb\":\"PING\"}");  // promises 64 bytes, sends 15
    client.shutdown_write();
    const std::string response = client.read_response();
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
    EXPECT_NE(response.find("bad-frame"), std::string::npos) << response;
    server.stop();
}

TEST(PlanningServerTest, PipelinedRequestsAllAnsweredAcrossLanes) {
    PlanningServer server(small_config(2));
    server.start();

    TestClient client(server.port());
    // Pipeline without reading: two sim-lane and two model-lane requests.
    client.send_request(kRefine);
    client.send_request(kEval);
    client.send_request(kRefine);
    client.send_request(kPing);

    // Responses may interleave across lanes; collect ids.
    std::vector<std::string> responses;
    for (int i = 0; i < 4; ++i) {
        responses.push_back(client.read_response());
        ASSERT_FALSE(responses.back().empty()) << "response " << i << " missing";
    }
    int pings = 0;
    int evals = 0;
    int refines = 0;
    for (const std::string& r : responses) {
        EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
        pings += r.find("\"verb\":\"PING\"") != std::string::npos ? 1 : 0;
        evals += r.find("\"verb\":\"EVAL\"") != std::string::npos ? 1 : 0;
        refines += r.find("\"verb\":\"REFINE\"") != std::string::npos ? 1 : 0;
    }
    EXPECT_EQ(pings, 1);
    EXPECT_EQ(evals, 1);
    EXPECT_EQ(refines, 2);
    server.stop();
}

TEST(PlanningServerTest, GracefulStopAnswersQueuedRequests) {
    PlanningServer server(small_config(2));
    server.start();

    TestClient client(server.port());
    // Pipeline a batch, then stop the server before reading anything:
    // the drain contract says every accepted frame still gets its answer.
    client.send_request(kEval);
    client.send_request(kRefine);
    client.send_request(kPing);
    // Give the io thread a moment to decode and enqueue the frames; stop()
    // closes the read side immediately, so unread bytes would be dropped.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    server.stop();
    EXPECT_FALSE(server.running());

    std::vector<std::string> responses;
    for (int i = 0; i < 3; ++i) {
        const std::string r = client.read_response();
        if (r.empty()) {
            break;
        }
        responses.push_back(r);
    }
    ASSERT_EQ(responses.size(), 3U);
    for (const std::string& r : responses) {
        EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
    }
    // After the drain the socket is closed.
    EXPECT_EQ(client.read_response(), "");
}

TEST(PlanningServerTest, StatsExposesServerSeries) {
    PlanningServer server(small_config(2));
    server.start();

    TestClient client(server.port());
    static_cast<void>(client.round_trip(kEval));
    const std::string response = client.round_trip("{\"verb\":\"STATS\",\"id\":9}");
    server.stop();

    serve::JsonValue value;
    std::string error;
    ASSERT_TRUE(serve::parse_json(response, value, &error)) << error;
    const serve::JsonValue* result = value.find("result");
    ASSERT_NE(result, nullptr) << response;
    const std::string text = result->find("prometheus")->as_string();

    std::string why;
    EXPECT_TRUE(swarmavail::telemetry::validate_prometheus_text(text, &why)) << why;
    EXPECT_NE(text.find("swarmavail_server_connections_accepted_total"),
              std::string::npos);
    EXPECT_NE(text.find("swarmavail_server_queue_depth{lane=\"model\"}"),
              std::string::npos);
    EXPECT_NE(text.find("swarmavail_server_latency_seconds_eval_count"),
              std::string::npos)
        << text;
}

// ---- request-lifecycle spans: observer neutrality ---------------------

// Spans must never change a response byte: the same sequential stream at
// --threads 1/2/4 with spans off and spans on (in-memory sink) must read
// identical reply bytes everywhere.
TEST(PlanningServerTest, SpansDoNotChangeResponseBytesAtAnyThreadCount) {
    const std::vector<std::string> stream = {kPing,   kEval, kEval, kRefine,
                                             kRefine, kPlan};
    std::vector<std::string> baseline;
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        for (const bool spans_on : {false, true}) {
            serve::MemorySpanSink sink;
            ServerConfig config = small_config(threads);
            if (spans_on) {
                config.spans = true;
                config.span_sink = &sink;
            }
            PlanningServer server(config);
            server.start();
            TestClient client(server.port());
            std::vector<std::string> replies;
            for (const std::string& request : stream) {
                replies.push_back(client.round_trip(request));
            }
            server.stop();

            if (baseline.empty()) {
                baseline = replies;
            } else {
                EXPECT_EQ(replies, baseline)
                    << "threads=" << threads << " spans=" << spans_on;
            }
#if !defined(SWARMAVAIL_SPANS_DISABLED)
            if (spans_on) {
                // The drain at stop() delivered the rings to our sink.
                EXPECT_FALSE(sink.records().empty());
            }
#endif
        }
    }
}

/// Masks the load-dependent values (histogram buckets/sums/counts and the
/// span bookkeeping counters) while keeping every series name, label set,
/// bucket edge, help/type line, and deterministic counter verbatim.
std::string normalized_stats(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    std::string out;
    const auto ends_with = [](const std::string& s, std::string_view suffix) {
        return s.size() >= suffix.size() &&
               s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
    };
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '#') {
            const std::size_t space = line.rfind(' ');
            if (space != std::string::npos) {
                const std::string head = line.substr(0, space);
                if (head.find("_bucket{") != std::string::npos ||
                    ends_with(head, "_sum") || ends_with(head, "_count") ||
                    head.rfind("swarmavail_server_span_", 0) == 0 ||
                    head == "swarmavail_server_slow_queries_total") {
                    out += head + " V\n";
                    continue;
                }
            }
        }
        out += line;
        out += '\n';
    }
    return out;
}

// The STATS merge-ordering satellite: per-worker registries merged in
// slot-index order must produce one exposition shape — same series, same
// order, same bucket edges, same deterministic counters — at --threads
// 1/2/4, with and without spans. Only the latency/stage sample values and
// span bookkeeping may differ, and those are masked.
TEST(PlanningServerTest, StatsMergeIsShapeIdenticalAcrossThreadsAndSpans) {
    const std::vector<std::string> stream = {kPing,   kEval, kEval, kRefine,
                                             kRefine, kPlan};
    std::vector<std::string> normalized;
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        for (const bool spans_on : {false, true}) {
            serve::MemorySpanSink sink;
            ServerConfig config = small_config(threads);
            if (spans_on) {
                config.spans = true;
                config.span_sink = &sink;
            }
            PlanningServer server(config);
            server.start();
            TestClient client(server.port());
            for (const std::string& request : stream) {
                ASSERT_FALSE(client.round_trip(request).empty());
            }
            const std::string response =
                client.round_trip("{\"verb\":\"STATS\",\"id\":9}");
            server.stop();

            serve::JsonValue value;
            std::string error;
            ASSERT_TRUE(serve::parse_json(response, value, &error)) << error;
            const std::string text =
                value.find("result")->find("prometheus")->as_string();
            // The stage families are part of the shape in every build and
            // mode, spans or not.
            EXPECT_NE(text.find("swarmavail_server_stage_seconds_queue_wait"),
                      std::string::npos);
            EXPECT_NE(text.find("swarmavail_server_stage_seconds_compute"),
                      std::string::npos);
            EXPECT_NE(text.find("swarmavail_server_model_cache_evictions_total"),
                      std::string::npos);
            EXPECT_NE(text.find("swarmavail_server_refine_cache_coalesced_total"),
                      std::string::npos);
            normalized.push_back(normalized_stats(text));
        }
    }
    ASSERT_EQ(normalized.size(), 6U);
    for (std::size_t i = 1; i < normalized.size(); ++i) {
        EXPECT_EQ(normalized[i], normalized[0])
            << "STATS shape diverged (run " << i << ")";
    }
}

#if !defined(SWARMAVAIL_SPANS_DISABLED)
// A request over the slow threshold must arrive at the slow sink as one
// contiguous block that reconstructs the full stage breakdown.
TEST(PlanningServerTest, SlowQueryLogReconstructsPerRequestBreakdown) {
    serve::MemorySpanSink slow;
    ServerConfig config = small_config(1);
    config.spans = true;
    config.slow_query_seconds = 1.0e-9;  // every request is "slow"
    config.slow_query_sink = &slow;
    PlanningServer server(config);
    server.start();
    TestClient client(server.port());
    EXPECT_NE(client.round_trip(kEval).find("\"ok\":true"), std::string::npos);
    server.stop();

    ASSERT_FALSE(slow.records().empty());
    const std::uint64_t request = slow.records().front().request;
    EXPECT_GT(request, 0U);
    std::uint32_t seen = 0;
    for (const serve::SpanRecord& record : slow.records()) {
        EXPECT_EQ(record.request, request);  // one request, one block
        EXPECT_EQ(record.verb, 1U);          // EVAL
        EXPECT_EQ(record.lane, 0U);          // model lane
        EXPECT_EQ(record.worker, 1U);        // worker 0's ring
        EXPECT_EQ(record.cache,
                  static_cast<std::uint32_t>(serve::SpanCacheOutcome::kMiss));
        EXPECT_GE(record.t_end, record.t_start);
        seen |= 1u << record.stage;
    }
    for (const serve::SpanStage stage :
         {serve::SpanStage::kDecode, serve::SpanStage::kParse,
          serve::SpanStage::kCache, serve::SpanStage::kQueueWait,
          serve::SpanStage::kCompute, serve::SpanStage::kSerialize,
          serve::SpanStage::kWrite}) {
        EXPECT_NE(seen & (1u << static_cast<std::uint32_t>(stage)), 0U)
            << "missing stage " << serve::span_stage_name(stage);
    }
}

// The drained span stream carries the io thread's records first (ring 0:
// accept spans) and correlates them with worker records by connection id.
TEST(PlanningServerTest, DrainedSpansCorrelateAcceptWithWorkerStages) {
    serve::MemorySpanSink sink;
    ServerConfig config = small_config(2);
    config.spans = true;
    config.span_sink = &sink;
    PlanningServer server(config);
    server.start();
    TestClient client(server.port());
    EXPECT_NE(client.round_trip(kPing).find("\"ok\":true"), std::string::npos);
    server.stop();

    ASSERT_FALSE(sink.records().empty());
    const serve::SpanRecord& accept = sink.records().front();
    EXPECT_EQ(accept.stage, static_cast<std::uint16_t>(serve::SpanStage::kAccept));
    EXPECT_EQ(accept.worker, 0U);  // ring 0 = io thread, merged first
    EXPECT_EQ(accept.t_start, accept.t_end);  // point event
    bool found_write = false;
    for (const serve::SpanRecord& record : sink.records()) {
        if (record.stage == static_cast<std::uint16_t>(serve::SpanStage::kWrite)) {
            EXPECT_EQ(record.connection, accept.connection);
            EXPECT_GT(record.bytes, 0U);
            found_write = true;
        }
    }
    EXPECT_TRUE(found_write);
}
#endif

TEST(PlanningServerTest, StopIsIdempotentAndRestartableAcrossInstances) {
    auto config = small_config(1);
    std::uint16_t port = 0;
    {
        PlanningServer server(config);
        server.start();
        port = server.port();
        server.stop();
        server.stop();  // idempotent
    }
    // The port is released; a new instance can bind it right away
    // (SO_REUSEADDR covers the TIME_WAIT case).
    config.port = port;
    PlanningServer second(config);
    second.start();
    TestClient client(second.port());
    EXPECT_NE(client.round_trip(kPing).find("\"ok\":true"), std::string::npos);
    second.stop();
}

TEST(PlanningServerTest, RequestStopUnblocksWaiter) {
    PlanningServer server(small_config(1));
    server.start();
    std::thread waiter([&server] { server.wait_until_stop_requested(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.request_stop();
    waiter.join();  // would hang forever if the self-pipe wakeup failed
    server.stop();
}

}  // namespace
