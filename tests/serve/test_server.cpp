// PlanningServer end-to-end over loopback TCP: the wire protocol, the
// concurrent-correctness satellite (identical query streams must receive
// bit-identical answers — refinement fingerprints included — at every
// worker count), frame-error handling, and graceful drain.
//
// Test names carry "Planning" so the tsan CI leg's name filter picks the
// suite up alongside the engine concurrency suites.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "util/telemetry.hpp"

namespace serve = swarmavail::serve;
using serve::FrameDecoder;
using serve::PlanningServer;
using serve::ServerConfig;

namespace {

/// Minimal blocking loopback client for the frame protocol.
class TestClient {
 public:
    explicit TestClient(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0) << std::strerror(errno);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
                  0)
            << std::strerror(errno);
    }
    ~TestClient() {
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }
    TestClient(const TestClient&) = delete;
    TestClient& operator=(const TestClient&) = delete;

    void send_raw(std::string_view bytes) {
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::send(fd_, bytes.data() + sent,
                                     bytes.size() - sent, MSG_NOSIGNAL);
            ASSERT_GT(n, 0) << std::strerror(errno);
            sent += static_cast<std::size_t>(n);
        }
    }

    void send_request(std::string_view payload) {
        send_raw(serve::encode_frame(payload));
    }

    /// Half-closes the write side, signalling EOF to the server.
    void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

    /// Reads one response frame (empty string on connection close).
    std::string read_response() {
        std::string payload;
        std::string error;
        while (true) {
            switch (decoder_.next(payload, error)) {
                case FrameDecoder::Status::kFrame:
                    return payload;
                case FrameDecoder::Status::kError:
                    ADD_FAILURE() << "malformed response frame: " << error;
                    return {};
                case FrameDecoder::Status::kNeedMore:
                    break;
            }
            char buffer[4096];
            const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
            if (n <= 0) {
                return {};
            }
            decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
        }
    }

    std::string round_trip(std::string_view payload) {
        send_request(payload);
        return read_response();
    }

 private:
    int fd_ = -1;
    FrameDecoder decoder_;
};

ServerConfig small_config(std::size_t threads) {
    ServerConfig config;
    config.threads = threads;
    // Small default catalog so uncached REFINEs stay fast in tests.
    config.router.policy.default_catalog.num_files = 4;
    return config;
}

const std::string kPing = "{\"verb\":\"PING\",\"id\":1}";
const std::string kEval =
    "{\"verb\":\"EVAL\",\"id\":2,\"lambda\":2,\"size\":1,\"mu\":1.25,"
    "\"r\":0.05,\"u\":300}";
const std::string kPlan =
    "{\"verb\":\"PLAN\",\"id\":3,\"lambda\":2,\"size\":1,\"mu\":1.25,"
    "\"r\":0.05,\"u\":300,\"variable\":\"k\",\"target\":0.01}";
const std::string kRefine =
    "{\"verb\":\"REFINE\",\"id\":4,\"catalog\":{\"files\":4},\"k\":2,"
    "\"horizon\":2000,\"seed\":3}";

TEST(PlanningServerTest, SequentialConnectionsAlternatingLanesAreServed) {
    // Regression: with one model-only and one sim-preferring worker both
    // blocked on the queue, a sim push whose single notify_one landed on
    // the model-only worker was swallowed — the worker re-waited, the
    // sim-capable one slept on, and a lone REFINE after an EVAL hung
    // until the next push. try_push must wake every waiter.
    PlanningServer server(small_config(2));
    server.start();
    for (int round = 0; round < 3; ++round) {
        TestClient eval_client(server.port());
        EXPECT_NE(eval_client.round_trip(kEval).find("\"ok\":true"),
                  std::string::npos);
        TestClient refine_client(server.port());
        EXPECT_NE(refine_client.round_trip(kRefine).find("\"ok\":true"),
                  std::string::npos);
    }
    server.stop();
}

TEST(PlanningServerTest, AnswersPingOverLoopback) {
    PlanningServer server(small_config(2));
    server.start();
    ASSERT_TRUE(server.running());
    ASSERT_NE(server.port(), 0);

    TestClient client(server.port());
    const std::string response = client.round_trip(kPing);
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
    EXPECT_NE(response.find("\"id\":1"), std::string::npos);
    EXPECT_NE(response.find("swarmavail-planning"), std::string::npos);
    server.stop();
    EXPECT_EQ(server.connections_accepted(), 1U);
}

// The concurrent-correctness satellite: N concurrent clients replay one
// identical mixed query stream against servers at --threads 1, 2, and 4;
// every client at every thread count must read bit-identical response
// bytes, refinement fingerprints included.
TEST(PlanningServerTest, IdenticalStreamsGetBitIdenticalAnswersAcrossThreadCounts) {
    const std::vector<std::string> stream = {kPing,   kEval, kRefine, kPlan,
                                             kRefine, kEval, kPing};
    constexpr std::size_t kClients = 4;

    std::vector<std::vector<std::string>> per_thread_count;
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        PlanningServer server(small_config(threads));
        server.start();

        std::vector<std::vector<std::string>> replies(kClients);
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (std::size_t c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                TestClient client(server.port());
                for (const std::string& request : stream) {
                    replies[c].push_back(client.round_trip(request));
                }
            });
        }
        for (std::thread& t : clients) {
            t.join();
        }
        server.stop();

        for (std::size_t c = 1; c < kClients; ++c) {
            EXPECT_EQ(replies[c], replies[0])
                << "client " << c << " diverged at threads=" << threads;
        }
        ASSERT_FALSE(replies[0].empty());
        per_thread_count.push_back(replies[0]);
    }
    ASSERT_EQ(per_thread_count.size(), 3U);
    EXPECT_EQ(per_thread_count[1], per_thread_count[0])
        << "threads=2 diverged from threads=1";
    EXPECT_EQ(per_thread_count[2], per_thread_count[0])
        << "threads=4 diverged from threads=1";

    // And the refinement answer really carries a fingerprint.
    const std::string& refine_reply = per_thread_count[0][2];
    EXPECT_NE(refine_reply.find("\"fingerprint\":\""), std::string::npos)
        << refine_reply;
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    EXPECT_EQ(refine_reply.find("\"fingerprint\":\"0000000000000000\""),
              std::string::npos);
#endif
}

TEST(PlanningServerTest, MalformedFrameGetsStructuredErrorBeforeClose) {
    PlanningServer server(small_config(1));
    server.start();

    TestClient client(server.port());
    client.send_raw("123456789\nnot a frame\n");  // 9-digit length prefix
    const std::string response = client.read_response();
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
    EXPECT_NE(response.find("bad-frame"), std::string::npos) << response;
    // The connection is dropped afterwards.
    EXPECT_EQ(client.read_response(), "");
    server.stop();
}

TEST(PlanningServerTest, TruncatedFrameAtEofGetsStructuredError) {
    PlanningServer server(small_config(1));
    server.start();

    TestClient client(server.port());
    client.send_raw("64\n{\"verb\":\"PING\"}");  // promises 64 bytes, sends 15
    client.shutdown_write();
    const std::string response = client.read_response();
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
    EXPECT_NE(response.find("bad-frame"), std::string::npos) << response;
    server.stop();
}

TEST(PlanningServerTest, PipelinedRequestsAllAnsweredAcrossLanes) {
    PlanningServer server(small_config(2));
    server.start();

    TestClient client(server.port());
    // Pipeline without reading: two sim-lane and two model-lane requests.
    client.send_request(kRefine);
    client.send_request(kEval);
    client.send_request(kRefine);
    client.send_request(kPing);

    // Responses may interleave across lanes; collect ids.
    std::vector<std::string> responses;
    for (int i = 0; i < 4; ++i) {
        responses.push_back(client.read_response());
        ASSERT_FALSE(responses.back().empty()) << "response " << i << " missing";
    }
    int pings = 0;
    int evals = 0;
    int refines = 0;
    for (const std::string& r : responses) {
        EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
        pings += r.find("\"verb\":\"PING\"") != std::string::npos ? 1 : 0;
        evals += r.find("\"verb\":\"EVAL\"") != std::string::npos ? 1 : 0;
        refines += r.find("\"verb\":\"REFINE\"") != std::string::npos ? 1 : 0;
    }
    EXPECT_EQ(pings, 1);
    EXPECT_EQ(evals, 1);
    EXPECT_EQ(refines, 2);
    server.stop();
}

TEST(PlanningServerTest, GracefulStopAnswersQueuedRequests) {
    PlanningServer server(small_config(2));
    server.start();

    TestClient client(server.port());
    // Pipeline a batch, then stop the server before reading anything:
    // the drain contract says every accepted frame still gets its answer.
    client.send_request(kEval);
    client.send_request(kRefine);
    client.send_request(kPing);
    // Give the io thread a moment to decode and enqueue the frames; stop()
    // closes the read side immediately, so unread bytes would be dropped.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    server.stop();
    EXPECT_FALSE(server.running());

    std::vector<std::string> responses;
    for (int i = 0; i < 3; ++i) {
        const std::string r = client.read_response();
        if (r.empty()) {
            break;
        }
        responses.push_back(r);
    }
    ASSERT_EQ(responses.size(), 3U);
    for (const std::string& r : responses) {
        EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
    }
    // After the drain the socket is closed.
    EXPECT_EQ(client.read_response(), "");
}

TEST(PlanningServerTest, StatsExposesServerSeries) {
    PlanningServer server(small_config(2));
    server.start();

    TestClient client(server.port());
    static_cast<void>(client.round_trip(kEval));
    const std::string response = client.round_trip("{\"verb\":\"STATS\",\"id\":9}");
    server.stop();

    serve::JsonValue value;
    std::string error;
    ASSERT_TRUE(serve::parse_json(response, value, &error)) << error;
    const serve::JsonValue* result = value.find("result");
    ASSERT_NE(result, nullptr) << response;
    const std::string text = result->find("prometheus")->as_string();

    std::string why;
    EXPECT_TRUE(swarmavail::telemetry::validate_prometheus_text(text, &why)) << why;
    EXPECT_NE(text.find("swarmavail_server_connections_accepted_total"),
              std::string::npos);
    EXPECT_NE(text.find("swarmavail_server_queue_depth{lane=\"model\"}"),
              std::string::npos);
    EXPECT_NE(text.find("swarmavail_server_latency_seconds_eval_count"),
              std::string::npos)
        << text;
}

TEST(PlanningServerTest, StopIsIdempotentAndRestartableAcrossInstances) {
    auto config = small_config(1);
    std::uint16_t port = 0;
    {
        PlanningServer server(config);
        server.start();
        port = server.port();
        server.stop();
        server.stop();  // idempotent
    }
    // The port is released; a new instance can bind it right away
    // (SO_REUSEADDR covers the TIME_WAIT case).
    config.port = port;
    PlanningServer second(config);
    second.start();
    TestClient client(second.port());
    EXPECT_NE(client.round_trip(kPing).find("\"ok\":true"), std::string::npos);
    second.stop();
}

TEST(PlanningServerTest, RequestStopUnblocksWaiter) {
    PlanningServer server(small_config(1));
    server.start();
    std::thread waiter([&server] { server.wait_until_stop_requested(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.request_stop();
    waiter.join();  // would hang forever if the self-pipe wakeup failed
    server.stop();
}

}  // namespace
