// RequestRouter: the socket-free engine half of the planning server.
// Response schema, error codes, id echo, cache-backed determinism, the
// refinement fingerprint, and the STATS exposition.
#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "util/telemetry.hpp"

namespace serve = swarmavail::serve;
using serve::JsonValue;
using serve::RequestRouter;
using serve::RouteResult;
using serve::RouterConfig;
using serve::Verb;

namespace {

JsonValue parse_response(const std::string& payload) {
    JsonValue value;
    std::string error;
    EXPECT_TRUE(serve::parse_json(payload, value, &error))
        << error << " in " << payload;
    EXPECT_TRUE(value.is_object());
    return value;
}

// u = 30 keeps the swarm visibly unavailable (P(K=1) ~ 0.2), so the K
// plan below has real work to do.
const std::string kEval =
    "{\"verb\":\"EVAL\",\"id\":1,\"lambda\":2,\"size\":1,\"mu\":1.25,"
    "\"r\":0.05,\"u\":30}";
const std::string kRefine =
    "{\"verb\":\"REFINE\",\"id\":2,\"catalog\":{\"files\":4},\"k\":2,"
    "\"horizon\":2000,\"seed\":3}";

TEST(ServeRouter, PingEchoesIdAndIdentifiesService) {
    RequestRouter router;
    const RouteResult result = router.route("{\"verb\":\"PING\",\"id\":41}");
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.verb, Verb::kPing);

    const JsonValue response = parse_response(result.payload);
    EXPECT_TRUE(response.find("ok")->as_bool());
    EXPECT_DOUBLE_EQ(response.find("id")->as_number(), 41.0);
    EXPECT_EQ(response.find("verb")->as_string(), "PING");
    const JsonValue* body = response.find("result");
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(body->find("service")->as_string(), "swarmavail-planning");
    EXPECT_EQ(router.requests(Verb::kPing), 1U);
}

TEST(ServeRouter, EvalReturnsModelNumbers) {
    RequestRouter router;
    const RouteResult result = router.route(kEval);
    ASSERT_TRUE(result.ok) << result.payload;
    const JsonValue response = parse_response(result.payload);
    const JsonValue* body = response.find("result");
    ASSERT_NE(body, nullptr);
    EXPECT_NEAR(body->find("busy_period")->as_number(), 78.356, 0.01);
    const double p = body->find("unavailability")->as_number();
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    ASSERT_NE(body->find("log_unavailability"), nullptr);
    ASSERT_NE(body->find("idle_period"), nullptr);
}

TEST(ServeRouter, ErrorsAreStructuredAndEchoIds) {
    RequestRouter router;

    RouteResult result = router.route("\xff\xfe");
    EXPECT_FALSE(result.ok);
    JsonValue response = parse_response(result.payload);
    EXPECT_FALSE(response.find("ok")->as_bool());
    EXPECT_EQ(response.find("error")->find("code")->as_string(), "bad-utf8");

    result = router.route("{nope");
    EXPECT_EQ(parse_response(result.payload).find("error")->find("code")->as_string(),
              "bad-json");

    result = router.route("{\"verb\":\"NOPE\",\"id\":6}");
    response = parse_response(result.payload);
    EXPECT_EQ(response.find("error")->find("code")->as_string(), "unknown-verb");
    EXPECT_DOUBLE_EQ(response.find("id")->as_number(), 6.0);  // echoed on errors

    result = router.route(
        "{\"verb\":\"EVAL\",\"id\":7,\"lambda\":-1,\"size\":1,\"mu\":1,"
        "\"r\":1,\"u\":1}");
    response = parse_response(result.payload);
    EXPECT_EQ(response.find("error")->find("code")->as_string(), "out-of-range");
    EXPECT_DOUBLE_EQ(response.find("id")->as_number(), 7.0);
    EXPECT_EQ(router.errors(), 4U);
}

TEST(ServeRouter, RepeatedRequestsAreBitIdenticalAndCached) {
    RequestRouter router;
    const RouteResult first = router.route(kEval);
    const RouteResult second = router.route(kEval);
    ASSERT_TRUE(first.ok);
    EXPECT_EQ(first.payload, second.payload);  // byte-for-byte
    EXPECT_EQ(router.model_cache().hits(), 1U);
    EXPECT_EQ(router.model_cache().misses(), 1U);

    // A different id shares the fragment but reassembles the envelope.
    std::string other = kEval;
    const std::size_t at = other.find("\"id\":1");
    other.replace(at, 6, "\"id\":9");
    const RouteResult third = router.route(other);
    ASSERT_TRUE(third.ok);
    EXPECT_NE(third.payload, first.payload);
    EXPECT_DOUBLE_EQ(parse_response(third.payload).find("id")->as_number(), 9.0);
    EXPECT_EQ(router.model_cache().hits(), 2U);  // fragment hit either way
}

TEST(ServeRouter, TextuallyDifferentEquivalentRequestsShareACacheEntry) {
    // Satellite: canonical keys make byte-different but semantically equal
    // requests hit the same entry (member order, number spelling, explicit
    // defaults).
    RequestRouter router;
    const RouteResult a = router.route(kEval);
    const RouteResult b = router.route(
        "{\"u\":3e1,\"r\":5e-2,\"mu\":1.25,\"size\":1.0,\"lambda\":2.0,"
        "\"k\":1,\"model\":\"impatient\",\"id\":1,\"verb\":\"EVAL\"}");
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.payload, b.payload);
    EXPECT_EQ(router.model_cache().misses(), 1U);
    EXPECT_EQ(router.model_cache().hits(), 1U);
}

TEST(ServeRouter, PlanReturnsFeasiblePlanWithEvaluationCount) {
    RequestRouter router;
    const RouteResult result = router.route(
        "{\"verb\":\"PLAN\",\"id\":3,\"lambda\":2,\"size\":1,\"mu\":1.25,"
        "\"r\":0.05,\"u\":30,\"variable\":\"k\",\"target\":0.001,"
        "\"max_k\":64}");
    ASSERT_TRUE(result.ok) << result.payload;
    const JsonValue response = parse_response(result.payload);
    const JsonValue* body = response.find("result");
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(body->find("variable")->as_string(), "k");
    EXPECT_TRUE(body->find("feasible")->as_bool());
    const double k = body->find("k")->as_number();
    EXPECT_GE(k, 2.0);
    EXPECT_DOUBLE_EQ(body->find("value")->as_number(), k);
    EXPECT_GE(body->find("evaluations")->as_number(), k);
    EXPECT_LE(body->find("unavailability")->as_number(), 0.001);
}

TEST(ServeRouterPlanning, RefineRunsSimulationWithFingerprint) {
    RequestRouter router;
    const RouteResult result = router.route(kRefine);
    ASSERT_TRUE(result.ok) << result.payload;
    const JsonValue response = parse_response(result.payload);
    const JsonValue* body = response.find("result");
    ASSERT_NE(body, nullptr);
    EXPECT_GT(body->find("arrivals")->as_number(), 0.0);
    EXPECT_EQ(body->find("swarms")->as_number(), 2.0);  // 4 files / K=2
    const std::string fingerprint = body->find("fingerprint")->as_string();
    EXPECT_EQ(fingerprint.size(), 16U);
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    EXPECT_NE(fingerprint, "0000000000000000");
    EXPECT_NE(router.refine_fingerprint_xor(), 0U);
#endif

    // The second identical request is a cache hit with identical bytes,
    // and the XOR digest is untouched (hits must not cancel it).
    const std::uint64_t digest = router.refine_fingerprint_xor();
    const RouteResult again = router.route(kRefine);
    EXPECT_EQ(again.payload, result.payload);
    EXPECT_EQ(router.refine_cache().hits(), 1U);
    EXPECT_EQ(router.refine_fingerprint_xor(), digest);
}

TEST(ServeRouterPlanning, ConcurrentMixedRoutingIsBitIdentical) {
    RequestRouter router;
    const std::vector<std::string> stream = {
        "{\"verb\":\"PING\",\"id\":1}",
        kEval,
        kRefine,
        "{\"verb\":\"PLAN\",\"id\":4,\"lambda\":2,\"size\":1,\"mu\":1.25,"
        "\"r\":0.05,\"u\":300,\"variable\":\"k\",\"target\":0.01}",
        kEval,
    };
    const RouteResult expected_refine = router.route(kRefine);  // warm once

    constexpr int kThreads = 4;
    std::vector<std::vector<std::string>> replies(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (const std::string& request : stream) {
                replies[static_cast<std::size_t>(t)].push_back(
                    router.route(request).payload);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(replies[static_cast<std::size_t>(t)],
                  replies[0]);  // same stream, same bytes
    }
    EXPECT_EQ(replies[0][2], expected_refine.payload);
}

TEST(ServeRouter, StatsRendersValidPrometheusText) {
    RequestRouter router;
    router.set_stats_appender([](std::string& out) {
        out += "# TYPE custom_gauge gauge\ncustom_gauge 7\n";
    });
    static_cast<void>(router.route(kEval));
    static_cast<void>(router.route("{\"verb\":\"NOPE\"}"));

    const RouteResult result = router.route("{\"verb\":\"STATS\",\"id\":5}");
    ASSERT_TRUE(result.ok);
    const JsonValue response = parse_response(result.payload);
    const JsonValue* body = response.find("result");
    ASSERT_NE(body, nullptr);
    const std::string text = body->find("prometheus")->as_string();

    std::string why;
    EXPECT_TRUE(swarmavail::telemetry::validate_prometheus_text(text, &why)) << why;
    EXPECT_NE(text.find("swarmavail_server_requests_total{verb=\"eval\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("swarmavail_server_errors_total 1"), std::string::npos);
    EXPECT_NE(text.find("custom_gauge 7"), std::string::npos);

    const std::string direct = router.render_stats();
    EXPECT_TRUE(swarmavail::telemetry::validate_prometheus_text(direct, &why))
        << why;
}

TEST(ServeRouter, ErrorResponseHelperProducesParseableErrors) {
    const std::string payload =
        RequestRouter::error_response(serve::error_code::kOverloaded,
                                      "queue \"model\" is full");
    const JsonValue response = parse_response(payload);
    EXPECT_FALSE(response.find("ok")->as_bool());
    EXPECT_EQ(response.find("error")->find("code")->as_string(), "overloaded");
}

}  // namespace
