// Strict JSON parser/writer of the planning service: grammar strictness,
// limits, escapes, UTF-8 validation, and the canonical (cache-key) writer.
#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace serve = swarmavail::serve;
using serve::JsonLimits;
using serve::JsonValue;

namespace {

JsonValue parse_ok(const std::string& text) {
    JsonValue value;
    std::string error;
    EXPECT_TRUE(serve::parse_json(text, value, &error)) << error << " in " << text;
    return value;
}

std::string parse_error(const std::string& text, const JsonLimits& limits = {}) {
    JsonValue value;
    std::string error;
    EXPECT_FALSE(serve::parse_json(text, value, &error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty());
    return error;
}

TEST(ServeJson, ParsesScalarsAndContainers) {
    EXPECT_TRUE(parse_ok("null").is_null());
    EXPECT_TRUE(parse_ok("true").as_bool());
    EXPECT_FALSE(parse_ok("false").as_bool());
    EXPECT_DOUBLE_EQ(parse_ok("-12.5e2").as_number(), -1250.0);
    EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");

    const JsonValue obj = parse_ok("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"} ");
    ASSERT_TRUE(obj.is_object());
    ASSERT_NE(obj.find("a"), nullptr);
    EXPECT_EQ(obj.find("a")->items().size(), 3U);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(ServeJson, RejectsMalformedDocuments) {
    parse_error("");
    parse_error("{");
    parse_error("[1,]");
    parse_error("{\"a\":1,}");
    parse_error("{\"a\" 1}");
    parse_error("tru");
    parse_error("1 2");          // trailing garbage
    parse_error("{\"a\":1}x");   // ditto
    parse_error("'single'");
}

TEST(ServeJson, NumberGrammarIsStrict) {
    parse_error("01");        // leading zero
    parse_error("+1");        // explicit plus
    parse_error(".5");        // missing integer part
    parse_error("1.");        // missing fraction digits
    parse_error("1e");        // missing exponent digits
    parse_error("0x10");      // hex
    parse_error("NaN");
    parse_error("Infinity");
    parse_error("1e999");     // overflows to non-finite
    EXPECT_DOUBLE_EQ(parse_ok("0").as_number(), 0.0);
    EXPECT_DOUBLE_EQ(parse_ok("-0.25e-1").as_number(), -0.025);
}

TEST(ServeJson, RejectsDuplicateKeys) {
    const std::string error = parse_error("{\"a\":1,\"a\":2}");
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(ServeJson, DiagnosticsCarryByteOffsets) {
    const std::string error = parse_error("{\"a\":tru}");
    EXPECT_NE(error.find("byte"), std::string::npos) << error;
}

TEST(ServeJson, EnforcesDepthValueAndStringLimits) {
    JsonLimits limits;
    limits.max_depth = 3;
    JsonValue value;
    std::string error;
    EXPECT_TRUE(serve::parse_json("[[[1]]]", value, &error, limits));
    EXPECT_FALSE(serve::parse_json("[[[[1]]]]", value, &error, limits));
    EXPECT_NE(error.find("depth"), std::string::npos) << error;

    limits = JsonLimits{};
    limits.max_values = 4;
    EXPECT_FALSE(serve::parse_json("[1,2,3,4]", value, &error, limits));

    limits = JsonLimits{};
    limits.max_string_bytes = 3;
    EXPECT_TRUE(serve::parse_json("\"abc\"", value, &error, limits));
    EXPECT_FALSE(serve::parse_json("\"abcd\"", value, &error, limits));
}

TEST(ServeJson, DecodesEscapesAndSurrogatePairs) {
    EXPECT_EQ(parse_ok("\"a\\n\\t\\\\\\\"\\/\"").as_string(), "a\n\t\\\"/");
    EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
    EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xc3\xa9");        // é
    EXPECT_EQ(parse_ok("\"\\ud83d\\ude00\"").as_string(), "\xf0\x9f\x98\x80");
    parse_error("\"\\ud83d\"");         // unpaired high surrogate
    parse_error("\"\\udc00\"");         // lone low surrogate
    parse_error("\"\\uZZZZ\"");
    parse_error("\"\\q\"");             // unknown escape
    parse_error(std::string("\"a\x01b\""));  // raw control byte
}

TEST(ServeJson, ValidatesUtf8) {
    EXPECT_TRUE(serve::validate_utf8("plain ascii"));
    EXPECT_TRUE(serve::validate_utf8("caf\xc3\xa9 \xf0\x9f\x98\x80"));
    EXPECT_FALSE(serve::validate_utf8("\xff"));
    EXPECT_FALSE(serve::validate_utf8("\xc3"));              // truncated
    EXPECT_FALSE(serve::validate_utf8("\xc0\xaf"));          // overlong '/'
    EXPECT_FALSE(serve::validate_utf8("\xed\xa0\x80"));      // surrogate
    EXPECT_FALSE(serve::validate_utf8("\xf4\x90\x80\x80"));  // > U+10FFFF
}

TEST(ServeJson, CanonicalWriterSortsKeysAndRoundTripsDoubles) {
    const JsonValue a = parse_ok("{\"b\":0.1,\"a\":true,\"c\":[1,\"x\"]}");
    const JsonValue b = parse_ok("{ \"c\":[1, \"x\"], \"a\": true, \"b\": 1e-1 }");
    EXPECT_EQ(serve::canonical_json(a), serve::canonical_json(b));
    EXPECT_EQ(serve::canonical_json(a), "{\"a\":true,\"b\":0.1,\"c\":[1,\"x\"]}");

    // Lossless doubles: the canonical text parses back to the same bits.
    const double tricky = 0.1 + 0.2;
    JsonValue num = JsonValue::make_number(tricky);
    const JsonValue back = parse_ok(serve::canonical_json(num));
    EXPECT_EQ(back.as_number(), tricky);
}

TEST(ServeJson, AppendJsonNumberQuotesNonFinite) {
    std::string out;
    serve::append_json_number(std::numeric_limits<double>::infinity(), out);
    EXPECT_EQ(out, "\"inf\"");
    out.clear();
    serve::append_json_number(-std::numeric_limits<double>::infinity(), out);
    EXPECT_EQ(out, "\"-inf\"");
    out.clear();
    serve::append_json_number(1.5, out);
    EXPECT_EQ(out, "1.5");
}

TEST(ServeJson, AppendJsonStringEscapes) {
    std::string out;
    serve::append_json_string("a\"b\\c\nd\x01", out);
    EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

}  // namespace
