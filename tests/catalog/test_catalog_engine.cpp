#include "catalog/catalog_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "catalog/bundling_policy.hpp"
#include "catalog/catalog.hpp"
#include "catalog/report.hpp"
#include "model/availability.hpp"
#include "model/params.hpp"
#include "sim/availability_sim.hpp"
#include "sim/trace.hpp"
#include "util/metrics.hpp"
#include "util/telemetry.hpp"

namespace swarmavail::catalog {
namespace {

CatalogConfig base_catalog_config(std::size_t files) {
    CatalogConfig config;
    config.num_files = files;
    config.zipf_exponent = 1.0;
    config.aggregate_demand = static_cast<double>(files) / 60.0;  // 1/60 per file mean
    config.file_size = 80.0;
    config.download_rate = 1.0;
    config.publisher_arrival_rate = 1.0 / 900.0;
    config.publisher_residence = 300.0;
    return config;
}

CatalogEngineConfig base_engine_config(double horizon) {
    CatalogEngineConfig config;
    config.horizon = horizon;
    config.seed = 20090101;
    return config;
}

std::string report_json(const CatalogReport& report) {
    std::ostringstream os;
    write_json(report, os);
    return os.str();
}

void expect_stats_equal(const StreamingStats& a, const StreamingStats& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void expect_results_equal(const sim::AvailabilitySimResult& a,
                          const sim::AvailabilitySimResult& b) {
    expect_stats_equal(a.busy_periods, b.busy_periods);
    expect_stats_equal(a.idle_periods, b.idle_periods);
    expect_stats_equal(a.download_times, b.download_times);
    expect_stats_equal(a.waiting_times, b.waiting_times);
    expect_stats_equal(a.peers_per_busy_period, b.peers_per_busy_period);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_EQ(a.stranded, b.stranded);
    EXPECT_EQ(a.unavailable_time_fraction, b.unavailable_time_fraction);
    EXPECT_EQ(a.arrival_unavailability, b.arrival_unavailability);
    EXPECT_EQ(a.publisher_up_transitions, b.publisher_up_transitions);
    EXPECT_EQ(a.publisher_online_fraction, b.publisher_online_fraction);
}

TEST(CatalogEngine, OneFileCatalogReproducesAvailabilitySimBitExactly) {
    const auto catalog = build_catalog(base_catalog_config(1));
    const auto engine_config = base_engine_config(2.0e5);
    const auto report = run_catalog(catalog, NoBundling{}, engine_config);
    ASSERT_EQ(report.swarms.size(), 1u);
    ASSERT_EQ(report.files.size(), 1u);

    // The reference run is configured by hand, not via swarm_sim_config, so
    // this also pins the engine's parameter mapping for the trivial plan.
    sim::AvailabilitySimConfig reference;
    reference.params.peer_arrival_rate = catalog.config.aggregate_demand;
    reference.params.content_size = catalog.config.file_size;
    reference.params.download_rate = catalog.config.download_rate;
    reference.params.publisher_arrival_rate = catalog.config.publisher_arrival_rate;
    reference.params.publisher_residence = catalog.config.publisher_residence;
    reference.horizon = engine_config.horizon;
    reference.seed = engine_config.seed;
    const auto isolated = sim::run_availability_sim(reference);

    expect_results_equal(report.swarms[0].result, isolated);
    EXPECT_EQ(report.arrivals, isolated.arrivals);
    EXPECT_EQ(report.served, isolated.served);
    EXPECT_EQ(report.files[0].arrival_unavailability, isolated.arrival_unavailability);
    EXPECT_EQ(report.demand_weighted_unavailability, isolated.arrival_unavailability);
}

TEST(CatalogEngine, ShardedBitIdenticalAcrossThreadCounts) {
    const auto catalog = build_catalog(base_catalog_config(60));
    const FixedK policy{7};  // 8 swarms of 7 plus a remainder of 4
    auto config = base_engine_config(2.0e4);

    config.policy.threads = 1;
    const std::string serial = report_json(run_catalog(catalog, policy, config));
    for (std::size_t threads : {2u, 4u, 8u}) {
        config.policy.threads = threads;
        EXPECT_EQ(report_json(run_catalog(catalog, policy, config)), serial)
            << "thread count " << threads;
    }
}

TEST(CatalogEngine, SharedQueueMatchesShardedBitExactly) {
    const auto catalog = build_catalog(base_catalog_config(30));
    const GreedyPopularity policy{4};
    auto config = base_engine_config(2.0e4);

    config.execution = ExecutionMode::kSharded;
    config.policy.threads = 4;
    const std::string sharded = report_json(run_catalog(catalog, policy, config));

    config.execution = ExecutionMode::kSharedQueue;
    EXPECT_EQ(report_json(run_catalog(catalog, policy, config)), sharded);
}

// The PR acceptance run: a 10k-file Zipf catalog bundled FixedK(8) — 1250
// swarms — completes under every execution mode with bit-identical reports.
TEST(CatalogEngine, TenThousandFileCatalogBitIdenticalEverywhere) {
    auto catalog_config = base_catalog_config(10000);
    catalog_config.aggregate_demand = 1.0;
    const auto catalog = build_catalog(catalog_config);
    const FixedK policy{8};
    auto config = base_engine_config(1500.0);

    config.policy.threads = 1;
    const auto report = run_catalog(catalog, policy, config);
    ASSERT_EQ(report.swarms.size(), 1250u);
    ASSERT_EQ(report.files.size(), 10000u);
    EXPECT_GT(report.arrivals, 0u);
    EXPECT_GT(report.publisher_up_transitions, 0u);
    const std::string serial = report_json(report);

    config.policy.threads = 4;
    EXPECT_EQ(report_json(run_catalog(catalog, policy, config)), serial);

    config.execution = ExecutionMode::kSharedQueue;
    EXPECT_EQ(report_json(run_catalog(catalog, policy, config)), serial);
}

// Measured catalog unavailability vs K must decrease and track the
// model-layer prediction (availability_impatient over make_bundle — the
// eq. 14 / e^{-Theta(K^2)} regime). A uniform catalog under FixedK is
// exactly N/K homogeneous bundles, so the catalog engine must reproduce
// the single-swarm ModelVsSimBundle result with pooled statistics.
// Tolerance pinned here: 15% relative + 0.01 absolute, the same budget the
// single-swarm suite uses.
TEST(CatalogEngine, UnavailabilityVsBundleSizeTracksModel) {
    CatalogConfig catalog_config;
    catalog_config.num_files = 6;
    catalog_config.zipf_exponent = 0.0;  // uniform demand = homogeneous bundles
    catalog_config.aggregate_demand = 6.0 / 120.0;  // 1/120 per file
    catalog_config.file_size = 60.0;
    catalog_config.download_rate = 1.0;
    catalog_config.publisher_arrival_rate = 1.0 / 900.0;
    catalog_config.publisher_residence = 250.0;
    const auto catalog = build_catalog(catalog_config);

    auto config = base_engine_config(2.0e6);
    config.patient_peers = false;  // loss fraction is the measurable P

    model::SwarmParams per_file;
    per_file.peer_arrival_rate = catalog.files[0].demand_rate;
    per_file.content_size = catalog.config.file_size;
    per_file.download_rate = catalog.config.download_rate;
    per_file.publisher_arrival_rate = catalog.config.publisher_arrival_rate;
    per_file.publisher_residence = catalog.config.publisher_residence;

    std::vector<double> measured;
    std::vector<double> predicted;
    for (std::size_t k : {1u, 2u, 3u}) {
        const auto report = run_catalog(catalog, FixedK{k}, config);
        const auto bundle =
            model::make_bundle(per_file, k, model::PublisherScaling::kConstant);
        const double model_p = model::availability_impatient(bundle).unavailability;
        EXPECT_NEAR(report.demand_weighted_unavailability, model_p,
                    0.15 * model_p + 0.01)
            << "K = " << k;
        measured.push_back(report.demand_weighted_unavailability);
        predicted.push_back(model_p);
    }
    // Bundling monotonically improves availability across the sweep.
    EXPECT_GT(measured[0], measured[1]);
    EXPECT_GT(measured[1], measured[2]);
    // And the model itself decays, so the comparison has teeth.
    EXPECT_GT(predicted[0], predicted[1]);
    EXPECT_GT(predicted[1], predicted[2]);
}

TEST(CatalogEngine, PublisherLoadObservablesMatchTheory) {
    // M/G/infinity publishers: P(no publisher online) = exp(-r u), so the
    // online fraction should sit near 1 - exp(-1/3) ~ 0.2835.
    const auto catalog = build_catalog(base_catalog_config(6));
    auto config = base_engine_config(3.0e5);
    const auto report = run_catalog(catalog, FixedK{3}, config);
    EXPECT_NEAR(report.mean_publisher_online_fraction, 1.0 - std::exp(-1.0 / 3.0),
                0.03);
    EXPECT_GT(report.publisher_up_transitions, 0u);
    // Dedicated publishers: offered load r*u per swarm.
    EXPECT_NEAR(report.expected_publisher_load, 2.0 * (300.0 / 900.0), 1e-12);
}

TEST(CatalogEngine, PartitionedBudgetKeepsOfferedLoadConstant) {
    auto catalog_config = base_catalog_config(12);
    catalog_config.publishers = PublisherAssignment::kPartitionedBudget;
    const auto catalog = build_catalog(catalog_config);
    auto config = base_engine_config(5.0e3);
    const auto unbundled = run_catalog(catalog, NoBundling{}, config);
    const auto bundled = run_catalog(catalog, FixedK{4}, config);
    EXPECT_NEAR(unbundled.expected_publisher_load, 300.0 / 900.0, 1e-12);
    EXPECT_NEAR(bundled.expected_publisher_load, 300.0 / 900.0, 1e-12);
}

TEST(CatalogEngine, TracedSwarmMatchesIsolatedRun) {
#if defined(SWARMAVAIL_TRACING_DISABLED)
    GTEST_SKIP() << "trace call sites are compiled out in this build";
#endif
    const auto catalog = build_catalog(base_catalog_config(12));
    const FixedK policy{4};
    const auto plan = policy.assign(catalog);

    auto config = base_engine_config(2.0e4);
    config.execution = ExecutionMode::kSharedQueue;  // interleaved on one queue
    config.traced_swarm = 1;
    sim::MemoryTraceSink catalog_sink;
    sim::Tracer catalog_tracer{catalog_sink};
    catalog_tracer.set_enabled(true);
    config.tracer = &catalog_tracer;
    (void)run_catalog_plan(catalog, plan, config);
    catalog_tracer.flush();

    sim::MemoryTraceSink isolated_sink;
    sim::Tracer isolated_tracer{isolated_sink};
    isolated_tracer.set_enabled(true);
    auto isolated_config = swarm_sim_config(catalog, plan, 1, config);
    isolated_config.tracer = &isolated_tracer;
    (void)sim::run_availability_sim(isolated_config);
    isolated_tracer.flush();

    ASSERT_FALSE(catalog_sink.records().empty());
    EXPECT_EQ(catalog_sink.records(), isolated_sink.records());
}

TEST(CatalogEngine, RecordsCatalogMetrics) {
    const auto catalog = build_catalog(base_catalog_config(9));
    auto config = base_engine_config(1.0e4);
    MetricsRegistry metrics;
    config.metrics = &metrics;
    const auto report = run_catalog(catalog, FixedK{3}, config);

    const auto* swarms = metrics.find_counter("catalog.swarms");
    ASSERT_NE(swarms, nullptr);
    EXPECT_EQ(swarms->value(), report.swarms.size());
    const auto* arrivals = metrics.find_counter("catalog.arrivals");
    ASSERT_NE(arrivals, nullptr);
    EXPECT_EQ(arrivals->value(), report.arrivals);
    const auto* unavail = metrics.find_gauge("catalog.demand_weighted_unavailability");
    ASSERT_NE(unavail, nullptr);
    EXPECT_EQ(unavail->value(), report.demand_weighted_unavailability);
    const auto* hist = metrics.find_histogram("catalog.swarm_unavailability");
    ASSERT_NE(hist, nullptr);
}

TEST(CatalogEngine, ValidatesInputs) {
    const auto catalog = build_catalog(base_catalog_config(4));
    auto config = base_engine_config(1.0e3);

    // Broken plan: missing a file.
    EXPECT_THROW((void)run_catalog_plan(catalog, {{0, 1}, {2}}, config),
                 std::invalid_argument);
    // Non-positive horizon.
    config.horizon = 0.0;
    EXPECT_THROW((void)run_catalog(catalog, NoBundling{}, config),
                 std::invalid_argument);
    // Traced swarm out of range.
    config = base_engine_config(1.0e3);
    config.traced_swarm = 4;  // NoBundling yields 4 swarms, indices 0..3
    EXPECT_THROW((void)run_catalog(catalog, NoBundling{}, config),
                 std::invalid_argument);
    config.traced_swarm = 3;
    EXPECT_NO_THROW((void)run_catalog(catalog, NoBundling{}, config));
}

TEST(CatalogEngine, TelemetryAttachmentIsObserverNeutral) {
    // The acceptance-criterion pin: a run with a live telemetry session
    // produces a byte-identical report to a detached run, for both
    // execution modes and several thread counts.
    const auto catalog = build_catalog(base_catalog_config(30));
    const GreedyPopularity policy{4};
    auto config = base_engine_config(1.0e4);
    config.policy.threads = 1;
    const std::string detached = report_json(run_catalog(catalog, policy, config));

    for (const ExecutionMode mode :
         {ExecutionMode::kSharded, ExecutionMode::kSharedQueue}) {
        for (std::size_t threads : {1u, 2u, 4u}) {
            telemetry::MemoryTelemetryExporter ring;
            telemetry::TelemetryConfig telemetry_config;
            telemetry_config.interval_s = 0.005;
            telemetry_config.exporters.push_back(&ring);
            telemetry::TelemetrySession session{telemetry_config};
            session.start();

            config.execution = mode;
            config.policy.threads = threads;
            config.telemetry = &session;
            const auto report = run_catalog(catalog, policy, config);
            session.stop();
            config.telemetry = nullptr;

            EXPECT_EQ(report_json(report), detached)
                << "mode " << static_cast<int>(mode) << ", threads " << threads;
            EXPECT_FALSE(report.stopped_early);
            EXPECT_EQ(report.swarms_planned, report.swarms.size());

            const auto& final_snapshot = ring.snapshots().back();
            EXPECT_TRUE(final_snapshot.final_snapshot);
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
            // The session really observed the run (under the trace-off
            // preset the engine call sites compile out and stay at zero).
            EXPECT_EQ(session.counters().swarms_total.load(), report.swarms.size());
            EXPECT_EQ(session.counters().swarms_completed.load(),
                      report.swarms.size());
            EXPECT_GT(session.counters().events_dispatched.load(), 0u);
            EXPECT_GT(session.counters().sim_time_advanced.load(), 0.0);
            ASSERT_EQ(final_snapshot.tracked.size(), 1u);
            EXPECT_EQ(final_snapshot.tracked[0].name, "catalog.swarm_unavailability");
            EXPECT_EQ(final_snapshot.tracked[0].count, report.swarms.size());
#endif
        }
    }
}

TEST(CatalogEngine, StopRuleEndsShardedSweepEarlyAndRecordsIt) {
    const auto catalog = build_catalog(base_catalog_config(60));
    const FixedK policy{2};  // 30 swarms
    auto config = base_engine_config(1.0e4);
    config.policy.threads = 1;  // serial: the stopped prefix is deterministic
    config.stop_rule = telemetry::StopRule{1.0, 8};  // generous: fires at 8

    const auto report = run_catalog(catalog, policy, config);
    EXPECT_TRUE(report.stopped_early);
    EXPECT_EQ(report.swarms_planned, 30u);
    EXPECT_EQ(report.swarms.size(), 8u);
    // Original swarm indices are preserved: the serial prefix 0..7.
    for (std::size_t i = 0; i < report.swarms.size(); ++i) {
        EXPECT_EQ(report.swarms[i].swarm, i);
    }
    // Only covered files appear, and the demand weighting stays normalized
    // over the demand that actually ran (a probability, not a ratio > 1).
    EXPECT_LT(report.files.size(), 60u);
    EXPECT_GE(report.demand_weighted_unavailability, 0.0);
    EXPECT_LE(report.demand_weighted_unavailability, 1.0);

    // The decision is visible in both serializations.
    EXPECT_NE(report_json(report).find("\"stopped_early\":true"), std::string::npos);
    std::ostringstream summary;
    write_summary(report, summary);
    EXPECT_NE(summary.str().find("stopped early: 8 of 30"), std::string::npos);

    // Identical config without the rule runs everything.
    config.stop_rule.reset();
    const auto full = run_catalog(catalog, policy, config);
    EXPECT_FALSE(full.stopped_early);
    EXPECT_EQ(full.swarms.size(), 30u);
    EXPECT_EQ(full.swarms_planned, 30u);
}

TEST(CatalogEngine, ThousandFileCatalogStreamsPeriodicTelemetry) {
    // The PR acceptance run: a 1000-file catalog with a live JSONL +
    // Prometheus telemetry session produces at least three periodic
    // snapshots plus a final one, every snapshot parses back, and the
    // counters are monotone across the stream.
    auto catalog_config = base_catalog_config(1000);
    catalog_config.aggregate_demand = 4.0;
    const auto catalog = build_catalog(catalog_config);
    const FixedK policy{4};  // 250 swarms

    std::ostringstream jsonl;
    const std::string prom_path =
        ::testing::TempDir() + "swarmavail_catalog_test.prom";
    telemetry::JsonlTelemetryExporter jsonl_exporter{jsonl};
    telemetry::PrometheusTextExporter prom_exporter{prom_path};
    telemetry::TelemetryConfig telemetry_config;
    telemetry_config.interval_s = 0.001;
    telemetry_config.exporters = {&jsonl_exporter, &prom_exporter};
    telemetry::TelemetrySession session{telemetry_config};
    session.start();

    auto config = base_engine_config(1000.0);
    config.telemetry = &session;
    // Re-run with a doubled horizon until the run has demonstrably spanned
    // three sampling periods, so the assertion is machine-speed independent
    // (counters accumulate across runs; monotonicity is unaffected).
    for (int attempt = 0; attempt < 6 && session.snapshots_taken() < 3; ++attempt) {
        (void)run_catalog(catalog, policy, config);
        config.horizon *= 2.0;
        config.seed += 1;
    }
    session.stop();

    std::istringstream in{jsonl.str()};
    const auto snapshots = telemetry::read_telemetry_jsonl(in);
    ASSERT_GE(snapshots.size(), 4u);  // >= 3 periodic + the final snapshot
    EXPECT_TRUE(snapshots.back().final_snapshot);
    for (std::size_t i = 0; i + 1 < snapshots.size(); ++i) {
        EXPECT_FALSE(snapshots[i].final_snapshot);
        EXPECT_EQ(snapshots[i].sequence + 1, snapshots[i + 1].sequence);
        EXPECT_LE(snapshots[i].wall_time_s, snapshots[i + 1].wall_time_s);
        EXPECT_LE(snapshots[i].events_dispatched, snapshots[i + 1].events_dispatched);
        EXPECT_LE(snapshots[i].swarms_completed, snapshots[i + 1].swarms_completed);
        EXPECT_LE(snapshots[i].replications_completed,
                  snapshots[i + 1].replications_completed);
    }
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
    EXPECT_GE(snapshots.back().swarms_completed, 250u);
    EXPECT_GT(snapshots.back().events_dispatched, 0u);
    ASSERT_EQ(snapshots.back().tracked.size(), 1u);
    EXPECT_EQ(snapshots.back().tracked[0].name, "catalog.swarm_unavailability");
#endif

    // The Prometheus exposition on disk passes the format check.
    std::ifstream prom{prom_path};
    ASSERT_TRUE(prom.is_open());
    std::ostringstream prom_text;
    prom_text << prom.rdbuf();
    std::string error;
    EXPECT_TRUE(telemetry::validate_prometheus_text(prom_text.str(), &error))
        << error;
    std::remove(prom_path.c_str());
}

TEST(CatalogEngine, StopRuleRejectsSharedQueueExecution) {
    const auto catalog = build_catalog(base_catalog_config(4));
    auto config = base_engine_config(1.0e3);
    config.execution = ExecutionMode::kSharedQueue;
    config.stop_rule = telemetry::StopRule{0.1, 4};
    EXPECT_THROW((void)run_catalog(catalog, NoBundling{}, config),
                 std::invalid_argument);
}

TEST(CatalogEngine, ReportJsonRoundTripsDeterministically) {
    const auto catalog = build_catalog(base_catalog_config(10));
    auto config = base_engine_config(5.0e3);
    const auto a = report_json(run_catalog(catalog, GreedyPopularity{3}, config));
    const auto b = report_json(run_catalog(catalog, GreedyPopularity{3}, config));
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"demand_weighted_unavailability\""), std::string::npos);
}

}  // namespace
}  // namespace swarmavail::catalog
