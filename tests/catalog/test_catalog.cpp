#include "catalog/catalog.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace swarmavail::catalog {
namespace {

CatalogConfig base_config(std::size_t files = 10) {
    CatalogConfig config;
    config.num_files = files;
    config.zipf_exponent = 1.0;
    config.aggregate_demand = 1.0 / 30.0;
    config.file_size = 80.0;
    config.download_rate = 1.0;
    config.publisher_arrival_rate = 1.0 / 900.0;
    config.publisher_residence = 300.0;
    return config;
}

TEST(BuildCatalog, DemandsSumToAggregateAndFollowZipf) {
    const auto catalog = build_catalog(base_config(10));
    ASSERT_EQ(catalog.files.size(), 10u);
    double total = 0.0;
    for (const auto& file : catalog.files) {
        total += file.demand_rate;
        EXPECT_EQ(file.size, 80.0);
    }
    EXPECT_NEAR(total, 1.0 / 30.0, 1e-12);
    EXPECT_NEAR(catalog.total_demand(), total, 1e-15);
    // Zipf(1): rank 1 twice as popular as rank 2, three times rank 3.
    EXPECT_NEAR(catalog.files[0].demand_rate / catalog.files[1].demand_rate, 2.0, 1e-9);
    EXPECT_NEAR(catalog.files[0].demand_rate / catalog.files[2].demand_rate, 3.0, 1e-9);
    // Ids are popularity ranks.
    for (std::size_t i = 0; i < catalog.files.size(); ++i) {
        EXPECT_EQ(catalog.files[i].id, i);
        if (i > 0) {
            EXPECT_LT(catalog.files[i].demand_rate, catalog.files[i - 1].demand_rate);
        }
    }
}

TEST(BuildCatalog, UniformExponentGivesEqualDemand) {
    auto config = base_config(4);
    config.zipf_exponent = 0.0;
    const auto catalog = build_catalog(config);
    for (const auto& file : catalog.files) {
        EXPECT_NEAR(file.demand_rate, config.aggregate_demand / 4.0, 1e-12);
    }
}

TEST(CatalogConfig, ValidateRejectsDegenerateInputs) {
    EXPECT_NO_THROW(base_config().validate());

    auto config = base_config();
    config.num_files = 0;
    EXPECT_THROW(config.validate(), std::invalid_argument);

    config = base_config();
    config.zipf_exponent = -0.1;
    EXPECT_THROW(config.validate(), std::invalid_argument);

    config = base_config();
    config.aggregate_demand = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);

    config = base_config();
    config.file_size = -1.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);

    config = base_config();
    config.download_rate = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);

    config = base_config();
    config.publisher_arrival_rate = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);

    config = base_config();
    config.publisher_residence = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(BuildCatalog, ValidatesBeforeBuilding) {
    auto config = base_config();
    config.num_files = 0;
    EXPECT_THROW((void)build_catalog(config), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::catalog
