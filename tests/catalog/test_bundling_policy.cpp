#include "catalog/bundling_policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "catalog/catalog.hpp"

namespace swarmavail::catalog {
namespace {

Catalog make_catalog(std::size_t files,
                     PublisherAssignment publishers = PublisherAssignment::kDedicated) {
    CatalogConfig config;
    config.num_files = files;
    config.zipf_exponent = 1.0;
    config.aggregate_demand = 1.0 / 10.0;
    config.file_size = 80.0;
    config.download_rate = 1.0;
    config.publisher_arrival_rate = 1.0 / 900.0;
    config.publisher_residence = 300.0;
    config.publishers = publishers;
    return build_catalog(config);
}

std::vector<std::size_t> sorted_members(const SwarmPlan& plan) {
    std::vector<std::size_t> all;
    for (const auto& swarm : plan) {
        all.insert(all.end(), swarm.begin(), swarm.end());
    }
    std::sort(all.begin(), all.end());
    return all;
}

void expect_exact_partition(const Catalog& catalog, const SwarmPlan& plan) {
    EXPECT_NO_THROW(validate_swarm_plan(catalog, plan));
    const auto all = sorted_members(plan);
    ASSERT_EQ(all.size(), catalog.files.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i], i);
    }
}

TEST(NoBundling, OneSwarmPerFile) {
    const auto catalog = make_catalog(7);
    const NoBundling policy;
    EXPECT_EQ(policy.name(), "none");
    const auto plan = policy.assign(catalog);
    ASSERT_EQ(plan.size(), 7u);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        ASSERT_EQ(plan[i].size(), 1u);
        EXPECT_EQ(plan[i][0], i);
    }
    expect_exact_partition(catalog, plan);
}

TEST(FixedKPolicy, PartitionsInRankOrderWithRemainder) {
    const auto catalog = make_catalog(10);
    const FixedK policy{3};
    EXPECT_EQ(policy.name(), "fixedk");
    const auto plan = policy.assign(catalog);
    // 10 files, K = 3: swarms of size 3, 3, 3 and a remainder swarm of 1.
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0], (SwarmFiles{0, 1, 2}));
    EXPECT_EQ(plan[1], (SwarmFiles{3, 4, 5}));
    EXPECT_EQ(plan[2], (SwarmFiles{6, 7, 8}));
    EXPECT_EQ(plan[3], (SwarmFiles{9}));
    expect_exact_partition(catalog, plan);
}

TEST(FixedKPolicy, ExactMultipleHasNoRemainderSwarm) {
    const auto catalog = make_catalog(9);
    const auto plan = FixedK{3}.assign(catalog);
    ASSERT_EQ(plan.size(), 3u);
    for (const auto& swarm : plan) {
        EXPECT_EQ(swarm.size(), 3u);
    }
    expect_exact_partition(catalog, plan);
}

TEST(FixedKPolicy, KOfOneMatchesNoBundling) {
    const auto catalog = make_catalog(5);
    EXPECT_EQ(FixedK{1}.assign(catalog), NoBundling{}.assign(catalog));
}

TEST(FixedKPolicy, RejectsZeroK) {
    EXPECT_THROW(FixedK{0}, std::invalid_argument);
}

TEST(GreedyPopularityPolicy, PairsHotHeadWithColdTail) {
    const auto catalog = make_catalog(10);
    const GreedyPopularity policy{3};
    EXPECT_EQ(policy.name(), "greedy");
    const auto plan = policy.assign(catalog);
    // Two-pointer packing: {0, 9, 8}, {1, 7, 6}, {2, 5, 4}, {3}.
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0], (SwarmFiles{0, 9, 8}));
    EXPECT_EQ(plan[1], (SwarmFiles{1, 7, 6}));
    EXPECT_EQ(plan[2], (SwarmFiles{2, 5, 4}));
    EXPECT_EQ(plan[3], (SwarmFiles{3}));
    expect_exact_partition(catalog, plan);
}

TEST(GreedyPopularityPolicy, DeterministicAcrossCalls) {
    const auto catalog = make_catalog(23);
    const GreedyPopularity policy{4};
    const auto first = policy.assign(catalog);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(policy.assign(catalog), first);
    }
    expect_exact_partition(catalog, first);
}

TEST(GreedyPopularityPolicy, EverySwarmLeadsWithItsHottestFile) {
    const auto catalog = make_catalog(17);
    const auto plan = GreedyPopularity{5}.assign(catalog);
    expect_exact_partition(catalog, plan);
    for (const auto& swarm : plan) {
        ASSERT_FALSE(swarm.empty());
        // The leading member is the most popular (lowest rank id) in the swarm.
        EXPECT_EQ(*std::min_element(swarm.begin(), swarm.end()), swarm.front());
    }
}

TEST(GreedyPopularityPolicy, RejectsZeroK) {
    EXPECT_THROW(GreedyPopularity{0}, std::invalid_argument);
}

TEST(ValidateSwarmPlan, RejectsBrokenPartitions) {
    const auto catalog = make_catalog(4);
    // Missing file 3.
    EXPECT_THROW(validate_swarm_plan(catalog, {{0, 1}, {2}}), std::invalid_argument);
    // Duplicate file 1.
    EXPECT_THROW(validate_swarm_plan(catalog, {{0, 1}, {1, 2, 3}}),
                 std::invalid_argument);
    // Out-of-range id.
    EXPECT_THROW(validate_swarm_plan(catalog, {{0, 1, 2, 4}}), std::invalid_argument);
    // Empty swarm.
    EXPECT_THROW(validate_swarm_plan(catalog, {{0, 1, 2, 3}, {}}),
                 std::invalid_argument);
    // Empty plan.
    EXPECT_THROW(validate_swarm_plan(catalog, {}), std::invalid_argument);
    // A correct partition passes.
    EXPECT_NO_THROW(validate_swarm_plan(catalog, {{3, 0}, {1, 2}}));
}

TEST(SwarmParamsFromPlan, AggregatesDemandAndSize) {
    const auto catalog = make_catalog(6);
    const SwarmFiles files{0, 4, 5};
    const auto params = swarm_params(catalog, files, 2);
    double demand = 0.0;
    for (std::size_t f : files) {
        demand += catalog.files[f].demand_rate;
    }
    EXPECT_DOUBLE_EQ(params.peer_arrival_rate, demand);
    EXPECT_DOUBLE_EQ(params.content_size, 3 * catalog.config.file_size);
    EXPECT_DOUBLE_EQ(params.download_rate, catalog.config.download_rate);
    // Dedicated publishers: the per-swarm rate is the configured rate.
    EXPECT_DOUBLE_EQ(params.publisher_arrival_rate,
                     catalog.config.publisher_arrival_rate);
    EXPECT_DOUBLE_EQ(params.publisher_residence, catalog.config.publisher_residence);
}

TEST(SwarmParamsFromPlan, PartitionedBudgetSplitsPublisherRate) {
    const auto catalog = make_catalog(6, PublisherAssignment::kPartitionedBudget);
    const auto params = swarm_params(catalog, {0, 1}, 3);
    EXPECT_DOUBLE_EQ(params.publisher_arrival_rate,
                     catalog.config.publisher_arrival_rate / 3.0);
}

TEST(SwarmParamsFromPlan, RejectsEmptyOrOutOfRange) {
    const auto catalog = make_catalog(3);
    EXPECT_THROW((void)swarm_params(catalog, {}, 1), std::invalid_argument);
    EXPECT_THROW((void)swarm_params(catalog, {0, 3}, 1), std::invalid_argument);
}

TEST(MakePolicy, MapsNamesAndValidates) {
    const auto catalog = make_catalog(8);
    EXPECT_EQ(make_policy("none", 99)->name(), "none");
    EXPECT_EQ(make_policy("fixedk", 4)->name(), "fixedk");
    EXPECT_EQ(make_policy("greedy", 4)->name(), "greedy");
    EXPECT_EQ(make_policy("fixedk", 4)->assign(catalog), FixedK{4}.assign(catalog));
    EXPECT_EQ(make_policy("greedy", 4)->assign(catalog),
              GreedyPopularity{4}.assign(catalog));
    EXPECT_THROW((void)make_policy("round-robin", 2), std::invalid_argument);
    EXPECT_THROW((void)make_policy("fixedk", 0), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::catalog
