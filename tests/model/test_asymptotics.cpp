#include "model/asymptotics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swarmavail::model {
namespace {

SwarmParams base_params() {
    SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

TEST(LeastSquaresSlope, ExactLine) {
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y{3.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(least_squares_slope(x, y), 2.0, 1e-12);
}

TEST(LeastSquaresSlope, NoisyLine) {
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 50; ++i) {
        x.push_back(i);
        y.push_back(0.5 * i + ((i % 2 == 0) ? 0.1 : -0.1));
    }
    EXPECT_NEAR(least_squares_slope(x, y), 0.5, 1e-3);
}

TEST(LeastSquaresSlope, RejectsDegenerateInputs) {
    EXPECT_THROW((void)least_squares_slope({1.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW((void)least_squares_slope({1.0, 2.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW((void)least_squares_slope({2.0, 2.0}, {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(GrowthDiagnostics, RatiosStabilize) {
    // Lemma 3.1 / Theorem 3.1: log E[B] / K^2 and -log P / K^2 approach a
    // constant.
    const auto points = growth_diagnostics(base_params(), 12, PublisherScaling::kConstant);
    ASSERT_EQ(points.size(), 12u);
    const double tail = points.back().busy_ratio;
    const double mid = points[7].busy_ratio;
    EXPECT_NEAR(tail, mid, 0.2 * tail);
    EXPECT_NEAR(points.back().unavail_ratio, points[7].unavail_ratio,
                0.2 * points.back().unavail_ratio);
}

TEST(GrowthDiagnostics, LogBusyGrowsSuperlinearly) {
    const auto points = growth_diagnostics(base_params(), 10, PublisherScaling::kConstant);
    // log E[B] grows faster than linear in K: successive increments widen.
    for (std::size_t i = 4; i < points.size(); ++i) {
        const double d1 = points[i].log_busy_period - points[i - 1].log_busy_period;
        const double d0 = points[i - 1].log_busy_period - points[i - 2].log_busy_period;
        EXPECT_GT(d1, d0) << "k=" << points[i].k;
    }
}

TEST(FittedK2Coefficient, ApproachesOfferedLoadPerFile) {
    // With constant publisher scaling the dominating exponent of E[B] is
    // K^2 lambda s / mu: the fitted K^2 coefficient approaches
    // lambda * s / mu = 80/60.
    const auto points = growth_diagnostics(base_params(), 14, PublisherScaling::kConstant);
    const double coefficient = fitted_k2_coefficient(points);
    EXPECT_NEAR(coefficient, 80.0 / 60.0, 0.15 * (80.0 / 60.0));
}

TEST(FittedK2Coefficient, RejectsTooFewPoints) {
    const auto points = growth_diagnostics(base_params(), 3, PublisherScaling::kConstant);
    EXPECT_THROW((void)fitted_k2_coefficient(points), std::invalid_argument);
}

TEST(GrowthDiagnostics, ProportionalScalingGrowsFaster) {
    // R = Kr, U = Ku adds publisher-side growth on top of the peer-side
    // K^2 term: log E[B] dominates the constant-scaling variant.
    const auto constant =
        growth_diagnostics(base_params(), 8, PublisherScaling::kConstant);
    const auto proportional =
        growth_diagnostics(base_params(), 8, PublisherScaling::kProportional);
    for (std::size_t i = 2; i < constant.size(); ++i) {
        EXPECT_GE(proportional[i].log_busy_period, constant[i].log_busy_period);
    }
}

}  // namespace
}  // namespace swarmavail::model
