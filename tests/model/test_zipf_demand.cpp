#include "model/zipf_demand.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

namespace swarmavail::model {
namespace {

SwarmParams base_params() {
    SwarmParams params;
    params.peer_arrival_rate = 1.0;  // ignored by compare_isolated_vs_bundle
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

TEST(ZipfPopularities, NormalizedAndDecreasing) {
    const auto p = zipf_popularities(10, 1.0);
    ASSERT_EQ(p.size(), 10u);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
    for (std::size_t i = 1; i < p.size(); ++i) {
        EXPECT_LT(p[i], p[i - 1]);
    }
}

TEST(ZipfPopularities, ZeroExponentUniform) {
    const auto p = zipf_popularities(4, 0.0);
    for (double v : p) {
        EXPECT_NEAR(v, 0.25, 1e-12);
    }
}

TEST(ZipfPopularities, RejectsEmptyCatalog) {
    EXPECT_THROW((void)zipf_popularities(0, 1.0), std::invalid_argument);
}

TEST(ZipfPopularities, RejectsNegativeOrNonFiniteExponent) {
    EXPECT_THROW((void)zipf_popularities(5, -0.5), std::invalid_argument);
    EXPECT_THROW((void)zipf_popularities(5, std::numeric_limits<double>::quiet_NaN()),
                 std::invalid_argument);
    EXPECT_THROW((void)zipf_popularities(5, std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
}

TEST(ZipfPopularities, KnownRatios) {
    const auto p = zipf_popularities(3, 1.0);
    EXPECT_NEAR(p[0] / p[1], 2.0, 1e-9);
    EXPECT_NEAR(p[0] / p[2], 3.0, 1e-9);
}

TEST(CompareIsolatedVsBundle, Figure6cDemandPattern) {
    // Section 4.3.3: lambda_i = 1/(8 i) for i = 1..4 (in 1/s here scaled to
    // the paper's per-minute-ish magnitudes). Bundling must hurt the most
    // popular file and help the unpopular ones.
    HeterogeneousDemandConfig config;
    config.lambdas = {1.0 / 8.0, 1.0 / 16.0, 1.0 / 24.0, 1.0 / 32.0};
    config.coverage_threshold = 9;
    config.single_publisher = true;
    const auto rows = compare_isolated_vs_bundle(base_params(), config);
    ASSERT_EQ(rows.size(), 4u);
    // All files share the bundle download time.
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_DOUBLE_EQ(rows[i].bundled_time, rows[0].bundled_time);
    }
    // Isolated download time grows as popularity falls.
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_GE(rows[i].isolated_time, rows[i - 1].isolated_time);
    }
    // The most popular file gains least (typically loses); the least
    // popular gains most.
    EXPECT_LT(rows.front().gain, rows.back().gain);
}

TEST(CompareIsolatedVsBundle, GainIsIsolatedMinusBundled) {
    HeterogeneousDemandConfig config;
    config.lambdas = {0.02, 0.005};
    const auto rows = compare_isolated_vs_bundle(base_params(), config);
    for (const auto& row : rows) {
        EXPECT_NEAR(row.gain, row.isolated_time - row.bundled_time, 1e-9);
    }
}

TEST(CompareIsolatedVsBundle, PatientModelVariant) {
    HeterogeneousDemandConfig config;
    config.lambdas = {0.02, 0.005, 0.001};
    config.single_publisher = false;
    const auto rows = compare_isolated_vs_bundle(base_params(), config);
    ASSERT_EQ(rows.size(), 3u);
    // Unpopular files still benefit more under the patient-peer model.
    EXPECT_LT(rows.front().gain, rows.back().gain);
}

TEST(CompareIsolatedVsBundle, LambdasRecordedPerFile) {
    HeterogeneousDemandConfig config;
    config.lambdas = {0.3, 0.2, 0.1};
    const auto rows = compare_isolated_vs_bundle(base_params(), config);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].file, i + 1);
        EXPECT_DOUBLE_EQ(rows[i].lambda, config.lambdas[i]);
    }
}

TEST(CompareIsolatedVsBundle, RejectsInvalidDemands) {
    HeterogeneousDemandConfig config;
    EXPECT_THROW((void)compare_isolated_vs_bundle(base_params(), config),
                 std::invalid_argument);
    config.lambdas = {0.1, 0.0};
    EXPECT_THROW((void)compare_isolated_vs_bundle(base_params(), config),
                 std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::model
