#include "model/lingering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/availability.hpp"

namespace swarmavail::model {
namespace {

SwarmParams base_params() {
    SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

TEST(AvailabilityLingering, ZeroLingerRecoversSelfishModel) {
    const auto params = base_params();
    const auto selfish = availability_impatient(params);
    const auto lingering = availability_lingering(params, 0.0);
    EXPECT_NEAR(lingering.unavailability, selfish.unavailability, 1e-12);
    EXPECT_NEAR(lingering.busy_period, selfish.busy_period,
                1e-9 * selfish.busy_period);
}

TEST(AvailabilityLingering, MoreLingeringMoreAvailability) {
    const auto params = base_params();
    double previous = 1.0;
    for (double linger : {0.0, 30.0, 120.0, 600.0}) {
        const double p = availability_lingering(params, linger).unavailability;
        EXPECT_LE(p, previous) << "linger=" << linger;
        previous = p;
    }
}

TEST(AvailabilityLingering, BusyPeriodGrowsWithLinger) {
    const auto params = base_params();
    const double short_busy = availability_lingering(params, 10.0).busy_period;
    const double long_busy = availability_lingering(params, 500.0).busy_period;
    EXPECT_GT(long_busy, short_busy);
}

TEST(AvailabilityLingering, RejectsNegativeLinger) {
    EXPECT_THROW((void)availability_lingering(base_params(), -1.0),
                 std::invalid_argument);
}

TEST(DownloadTimeLingering, ServiceUnchangedWaitShrinks) {
    const auto params = base_params();
    const auto selfish = download_time_lingering(params, 0.0);
    const auto lingering = download_time_lingering(params, 300.0);
    EXPECT_NEAR(lingering.service_time, selfish.service_time, 1e-12);
    EXPECT_LT(lingering.waiting_time, selfish.waiting_time);
    EXPECT_LT(lingering.download_time, selfish.download_time);
}

TEST(LingeringParity, Equation15Identity) {
    // eq. 15: s1/mu + 1/gamma = (s1+s2)(1 + lambda2/lambda1)/mu.
    const double s1 = 10.0;
    const double s2 = 400.0;
    const double l1 = 0.001;
    const double l2 = 0.1;
    const double mu = 1.0;
    const double residence = residence_with_parity_lingering(s1, s2, l1, l2, mu);
    const double expected = (s1 + s2) / mu * (1.0 + l2 / l1);
    EXPECT_NEAR(residence, expected, 1e-9 * expected);
}

TEST(LingeringParity, DivergesForUnpopularContent) {
    // As lambda1 -> 0 the lingering needed for parity grows without bound.
    const double s1 = 10.0;
    const double s2 = 400.0;
    const double l2 = 0.1;
    const double mu = 1.0;
    double previous = 0.0;
    for (double l1 : {1e-2, 1e-3, 1e-4, 1e-5}) {
        const double linger = lingering_time_for_bundle_parity(s1, s2, l1, l2, mu);
        EXPECT_GT(linger, previous);
        previous = linger;
    }
    EXPECT_GT(previous, 1e6);
}

TEST(LingeringParity, BundleCostMarginalForSmallContent) {
    // Section 3.3.4: if s1 << s2, peers of content 2 pay only a marginal
    // overhead to carry content 1.
    const double s1 = 1.0;
    const double s2 = 1000.0;
    const double mu = 1.0;
    const double bundle = bundle_download_time(s1, s2, mu);
    EXPECT_NEAR(bundle, s2 / mu, 0.002 * bundle + s1 / mu);
    EXPECT_LT((bundle - s2 / mu) / (s2 / mu), 0.01);
}

TEST(LingeringParity, RejectsInvalidInputs) {
    EXPECT_THROW((void)lingering_time_for_bundle_parity(0.0, 1.0, 0.1, 0.1, 1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)lingering_time_for_bundle_parity(1.0, 1.0, 0.0, 0.1, 1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)lingering_time_for_bundle_parity(1.0, 1.0, 0.1, 0.1, 0.0),
                 std::invalid_argument);
    EXPECT_THROW((void)bundle_download_time(0.0, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::model
