#include "model/availability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/params.hpp"

namespace swarmavail::model {
namespace {

SwarmParams base_params() {
    SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;  // with rate 1, service = 80 s
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

TEST(AvailabilityPublishersOnly, MatchesEquationsOneAndTwo) {
    // eq. 2: E[B] = (e^{r u} - 1) / r; eq. 1: P = (1/r)/(E[B] + 1/r).
    auto params = base_params();
    params.publisher_arrival_rate = 0.002;
    params.publisher_residence = 400.0;
    const auto result = availability_publishers_only(params);
    const double expected_busy = (std::exp(0.002 * 400.0) - 1.0) / 0.002;
    EXPECT_NEAR(result.busy_period, expected_busy, 1e-9 * expected_busy);
    const double expected_p = (1.0 / 0.002) / (expected_busy + 1.0 / 0.002);
    EXPECT_NEAR(result.unavailability, expected_p, 1e-12);
    EXPECT_NEAR(result.idle_period, 500.0, 1e-12);
}

TEST(AvailabilityPublishersOnly, AlwaysOnPublisherLimit) {
    // r u >> 1: unavailability vanishes.
    auto params = base_params();
    params.publisher_arrival_rate = 0.1;
    params.publisher_residence = 1000.0;
    const auto result = availability_publishers_only(params);
    EXPECT_LT(result.unavailability, 1e-10);
}

TEST(AvailabilityPublishersOnly, RarePublisherLimit) {
    // r u << 1: P -> 1/(1 + r u) -> 1.
    auto params = base_params();
    params.publisher_arrival_rate = 1e-6;
    params.publisher_residence = 1.0;
    const auto result = availability_publishers_only(params);
    EXPECT_GT(result.unavailability, 0.999);
}

TEST(AvailabilityPeersAndPublishers, MatchesEquationSeven) {
    const auto params = base_params();
    const auto result = availability_peers_and_publishers(params);
    const double beta = params.peer_arrival_rate + params.publisher_arrival_rate;
    const double expected_busy =
        (std::exp(beta * params.service_time()) - 1.0) / beta;
    EXPECT_NEAR(result.busy_period, expected_busy, 1e-9 * expected_busy);
}

TEST(AvailabilityPeersAndPublishers, PeersStrictlyImproveOverPublishersAlone) {
    // With u = s/mu the peers+publishers busy period dominates the
    // publishers-only one at the same publisher process.
    auto params = base_params();
    params.publisher_residence = params.service_time();
    const auto with_peers = availability_peers_and_publishers(params);
    const auto without = availability_publishers_only(params);
    EXPECT_LT(with_peers.unavailability, without.unavailability);
}

TEST(AvailabilityImpatient, UnavailabilityInUnitInterval) {
    const auto result = availability_impatient(base_params());
    EXPECT_GT(result.unavailability, 0.0);
    EXPECT_LT(result.unavailability, 1.0);
}

TEST(AvailabilityImpatient, LogConsistentWithLinear) {
    const auto result = availability_impatient(base_params());
    EXPECT_NEAR(result.log_unavailability, std::log(result.unavailability), 1e-9);
}

TEST(AvailabilityImpatient, PeersPerBusyPeriodIsLambdaTimesBusyPeriod) {
    const auto params = base_params();
    const auto result = availability_impatient(params);
    EXPECT_NEAR(result.peers_per_busy_period,
                params.peer_arrival_rate * result.busy_period,
                1e-9 * result.peers_per_busy_period);
}

TEST(AvailabilityImpatient, MoreDemandMoreAvailability) {
    auto params = base_params();
    double previous = 1.0;
    for (double rate : {0.005, 0.01, 0.02, 0.04}) {
        params.peer_arrival_rate = rate;
        const double p = availability_impatient(params).unavailability;
        EXPECT_LT(p, previous);
        previous = p;
    }
}

TEST(AvailabilityImpatient, BundlingReducesUnavailabilityMonotonically) {
    const auto base = base_params();
    double previous = 1.0;
    for (std::size_t k = 1; k <= 6; ++k) {
        const auto bundle = make_bundle(base, k, PublisherScaling::kConstant);
        const double p = availability_impatient(bundle).unavailability;
        EXPECT_LT(p, previous) << "k=" << k;
        previous = p;
    }
}

TEST(AvailabilityImpatient, ProportionalScalingAlsoImproves) {
    const auto base = base_params();
    const auto k1 = availability_impatient(base);
    const auto k4 = availability_impatient(make_bundle(base, 4, PublisherScaling::kProportional));
    EXPECT_LT(k4.unavailability, k1.unavailability);
}

TEST(MixedBusyPeriod, UsesSectionThreeThreeParameterization) {
    // Cross-check: with q1 = lambda/(lambda+r), alpha1 = s/mu,
    // alpha2 = theta = u, the availability formula P = (1/r)/(E[B]+1/r)
    // must hold.
    const auto params = base_params();
    const auto busy = mixed_busy_period(params);
    const auto avail = availability_impatient(params);
    const double idle = 1.0 / params.publisher_arrival_rate;
    EXPECT_NEAR(avail.unavailability, idle / (busy.value + idle), 1e-12);
}

TEST(Availability, Theorem31NegLogPGrowsLikeKSquared) {
    // -log P should grow ~ quadratically: successive differences of
    // -log P / K^2 shrink.
    const auto base = base_params();
    double prev_ratio = 0.0;
    std::size_t checks = 0;
    for (std::size_t k = 4; k <= 10; k += 2) {
        const auto bundle = make_bundle(base, k, PublisherScaling::kConstant);
        const auto result = availability_impatient(bundle);
        const double ratio =
            -result.log_unavailability / (static_cast<double>(k) * static_cast<double>(k));
        if (prev_ratio > 0.0) {
            EXPECT_NEAR(ratio, prev_ratio, 0.35 * prev_ratio) << "k=" << k;
            ++checks;
        }
        prev_ratio = ratio;
    }
    EXPECT_GE(checks, 2u);
}

TEST(Availability, InvalidParametersThrow) {
    SwarmParams params;  // all zero
    EXPECT_THROW((void)availability_publishers_only(params), std::invalid_argument);
    EXPECT_THROW((void)availability_impatient(params), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::model
