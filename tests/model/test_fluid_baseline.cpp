#include "model/fluid_baseline.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swarmavail::model {
namespace {

FluidParams base_params() {
    FluidParams params;
    params.lambda = 1.0 / 60.0;
    params.mu = 1.0 / 80.0;  // one copy per 80 s of uploading
    params.c = 1.0 / 20.0;
    params.eta = 1.0;
    params.gamma = 1.0;  // selfish peers
    return params;
}

TEST(FluidSteadyState, ClassicClosedForm) {
    // theta = 0, gamma >> mu: T = max(1/c, (1/eta)(1/mu - 1/gamma)).
    const auto params = base_params();
    const auto state = fluid_steady_state(params);
    const double expected = std::max(20.0, 80.0 - 1.0);
    EXPECT_NEAR(state.download_time, expected, 1e-9);
    EXPECT_TRUE(state.upload_constrained);
}

TEST(FluidSteadyState, DownloadConstrainedRegime) {
    // Seeds linger (gamma small): uploads plentiful, download cap binds.
    auto params = base_params();
    params.gamma = 0.001;  // seeds stay ~1000 s
    const auto state = fluid_steady_state(params);
    EXPECT_NEAR(state.download_time, 20.0, 1e-9);
    EXPECT_FALSE(state.upload_constrained);
}

TEST(FluidSteadyState, LittleLawConsistency) {
    const auto state = fluid_steady_state(base_params());
    EXPECT_NEAR(state.leechers, base_params().lambda * state.download_time, 1e-9);
}

TEST(FluidSteadyState, SeedsBalanceCompletions) {
    const auto params = base_params();
    const auto state = fluid_steady_state(params);
    // In equilibrium completions == lambda (theta = 0), so y* = lambda/gamma.
    EXPECT_NEAR(state.seeds, params.lambda / params.gamma, 1e-9);
}

TEST(FluidSteadyState, AbandonmentReducesPopulation) {
    auto with = base_params();
    with.theta = 0.01;
    const auto patient = fluid_steady_state(base_params());
    const auto impatient = fluid_steady_state(with);
    EXPECT_LT(impatient.leechers, patient.leechers);
}

TEST(FluidSteadyState, RejectsInvalidParameters) {
    auto params = base_params();
    params.lambda = 0.0;
    EXPECT_THROW((void)fluid_steady_state(params), std::invalid_argument);
    params = base_params();
    params.eta = 1.5;
    EXPECT_THROW((void)fluid_steady_state(params), std::invalid_argument);
    params = base_params();
    params.gamma = -1.0;
    EXPECT_THROW((void)fluid_steady_state(params), std::invalid_argument);
}

TEST(FluidBundle, StrictlyIncreasingInK) {
    // The paper's point: the naive fluid adaptation can never favour
    // bundling.
    const auto params = base_params();
    double previous = 0.0;
    for (std::size_t k = 1; k <= 8; ++k) {
        const double t = fluid_bundle_download_time(params, k);
        EXPECT_GT(t, previous) << "k=" << k;
        previous = t;
    }
}

TEST(FluidBundle, GrowsLinearlyInUploadConstrainedRegime) {
    const auto params = base_params();
    const double t1 = fluid_bundle_download_time(params, 1);
    const double t4 = fluid_bundle_download_time(params, 4);
    EXPECT_NEAR(t4 / t1, 4.0, 0.2);
}

TEST(FluidIntegrate, ConvergesToClosedFormEquilibrium) {
    const auto params = base_params();
    const auto closed = fluid_steady_state(params);
    const auto integrated = fluid_integrate(params, 200000.0, 0.5);
    EXPECT_NEAR(integrated.leechers, closed.leechers, 0.05 * closed.leechers + 0.05);
    EXPECT_NEAR(integrated.seeds, closed.seeds, 0.05 * closed.seeds + 0.05);
}

TEST(FluidIntegrate, DownloadConstrainedConvergence) {
    auto params = base_params();
    params.gamma = 0.001;
    const auto closed = fluid_steady_state(params);
    const auto integrated = fluid_integrate(params, 500000.0, 0.5);
    EXPECT_NEAR(integrated.download_time, closed.download_time,
                0.1 * closed.download_time);
}

TEST(FluidIntegrate, RejectsInvalidStep) {
    EXPECT_THROW((void)fluid_integrate(base_params(), 10.0, 20.0),
                 std::invalid_argument);
    EXPECT_THROW((void)fluid_integrate(base_params(), 0.0, 0.1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::model
