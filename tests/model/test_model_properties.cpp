// Parameterized property sweep over the model's parameter space: the
// structural guarantees of Section 3 must hold at every grid point, not
// just the calibrated Figure 3/6 settings.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "model/availability.hpp"
#include "model/bundling.hpp"
#include "model/download_time.hpp"

namespace swarmavail::model {
namespace {

using GridCase = std::tuple<double, double, double, double>;  // lambda, s/mu, r, u

SwarmParams params_of(const GridCase& grid) {
    SwarmParams params;
    params.peer_arrival_rate = std::get<0>(grid);
    params.content_size = std::get<1>(grid);
    params.download_rate = 1.0;
    params.publisher_arrival_rate = std::get<2>(grid);
    params.publisher_residence = std::get<3>(grid);
    return params;
}

class ModelProperties : public ::testing::TestWithParam<GridCase> {};

TEST_P(ModelProperties, ProbabilitiesAreProbabilities) {
    const auto params = params_of(GetParam());
    for (const double p :
         {availability_publishers_only(params).unavailability,
          availability_peers_and_publishers(params).unavailability,
          availability_impatient(params).unavailability,
          download_time_patient(params).unavailability,
          download_time_threshold(params, 3).unavailability,
          download_time_single_publisher(params, 3).unavailability}) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST_P(ModelProperties, DownloadTimeDominatesServiceTime) {
    const auto params = params_of(GetParam());
    for (const auto& dt :
         {download_time_patient(params), download_time_threshold(params, 2),
          download_time_single_publisher(params, 2)}) {
        EXPECT_GE(dt.download_time, params.service_time() - 1e-9);
        EXPECT_GE(dt.waiting_time, 0.0);
    }
}

TEST_P(ModelProperties, PeersHelpOnTopOfPublishersAlone) {
    // Adding peer-sustained busy periods can only improve availability over
    // the publishers-only model at matched publisher processes (with
    // u = s/mu, the eq. 7 process dominates the eq. 2 one).
    auto params = params_of(GetParam());
    params.publisher_residence = params.service_time();
    const auto without = availability_publishers_only(params);
    const auto with = availability_peers_and_publishers(params);
    EXPECT_LE(with.unavailability, without.unavailability + 1e-12);
}

TEST_P(ModelProperties, BundlingMonotonicallyImprovesAvailability) {
    const auto params = params_of(GetParam());
    double previous = 1.1;
    for (std::size_t k = 1; k <= 5; ++k) {
        const auto bundle = make_bundle(params, k, PublisherScaling::kConstant);
        const double p = availability_impatient(bundle).unavailability;
        EXPECT_LT(p, previous) << "k=" << k;
        previous = p;
    }
}

TEST_P(ModelProperties, Theorem32UpperBoundHolds) {
    const auto params = params_of(GetParam());
    const double single = download_time_patient(params).download_time;
    for (std::size_t k : {2u, 4u, 6u}) {
        const auto bundle = make_bundle(params, k, PublisherScaling::kConstant);
        EXPECT_LE(download_time_patient(bundle).download_time,
                  static_cast<double>(k) * single * (1.0 + 1e-9))
            << "k=" << k;
    }
}

TEST_P(ModelProperties, PatientWaitMatchesLossProbability) {
    // Lemma 3.2's structure: waiting = P/r for the identical P that the
    // impatient model loses.
    const auto params = params_of(GetParam());
    const auto impatient = availability_impatient(params);
    const auto patient = download_time_patient(params);
    EXPECT_NEAR(patient.waiting_time,
                impatient.unavailability / params.publisher_arrival_rate, 1e-9);
}

TEST_P(ModelProperties, ThresholdModelMonotoneInM) {
    const auto params = params_of(GetParam());
    double previous = -1.0;
    for (std::size_t m : {1u, 2u, 4u, 8u}) {
        const double p = download_time_threshold(params, m).unavailability;
        EXPECT_GE(p, previous - 1e-12) << "m=" << m;
        previous = p;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, ModelProperties,
    ::testing::Values(GridCase{1.0 / 60.0, 80.0, 1.0 / 900.0, 300.0},
                      GridCase{1.0 / 30.0, 40.0, 1.0 / 300.0, 100.0},
                      GridCase{1.0 / 300.0, 120.0, 1.0 / 2000.0, 600.0},
                      GridCase{1.0 / 15.0, 20.0, 1.0 / 1200.0, 50.0},
                      GridCase{1.0 / 120.0, 200.0, 1.0 / 600.0, 900.0},
                      GridCase{1.0 / 600.0, 60.0, 1.0 / 450.0, 150.0}));

}  // namespace
}  // namespace swarmavail::model
