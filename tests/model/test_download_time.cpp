#include "model/download_time.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/availability.hpp"
#include "model/params.hpp"
#include "queueing/busy_period.hpp"

namespace swarmavail::model {
namespace {

SwarmParams base_params() {
    SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

TEST(DownloadTimePatient, Equation11Identity) {
    // Lemma 3.2: E[T] = s/mu + P/r with P from the impatient model.
    const auto params = base_params();
    const auto dt = download_time_patient(params);
    const auto avail = availability_impatient(params);
    EXPECT_NEAR(dt.unavailability, avail.unavailability, 1e-12);
    EXPECT_NEAR(dt.download_time,
                params.service_time() +
                    avail.unavailability / params.publisher_arrival_rate,
                1e-9);
    EXPECT_NEAR(dt.download_time, dt.service_time + dt.waiting_time, 1e-12);
}

TEST(DownloadTimePatient, AlwaysAtLeastServiceTime) {
    const auto dt = download_time_patient(base_params());
    EXPECT_GE(dt.download_time, dt.service_time);
    EXPECT_NEAR(dt.service_time, 80.0, 1e-9);
}

TEST(DownloadTimePatient, HighlyAvailablePublisherLeavesOnlyService) {
    auto params = base_params();
    params.publisher_arrival_rate = 0.1;
    params.publisher_residence = 10000.0;
    const auto dt = download_time_patient(params);
    EXPECT_NEAR(dt.download_time, dt.service_time, 1e-3);
}

TEST(DownloadTimeTheorem32, BundlingInflatesAtMostFactorK) {
    // Theorem 3.2(a): E[T_bundle] <= K * E[T_single] (constant R, U).
    const auto base = base_params();
    const double single = download_time_patient(base).download_time;
    for (std::size_t k = 2; k <= 8; ++k) {
        const auto bundle = make_bundle(base, k, PublisherScaling::kConstant);
        const double bundled = download_time_patient(bundle).download_time;
        EXPECT_LE(bundled, static_cast<double>(k) * single * (1.0 + 1e-9)) << "k=" << k;
    }
}

TEST(DownloadTimeTheorem32, GainGrowsAsPublisherVanishes) {
    // Theorem 3.2(b): the achievable reduction grows like Theta(1/R).
    const auto base = base_params();
    double previous_gain = 0.0;
    for (double idle : {2000.0, 4000.0, 8000.0, 16000.0}) {
        auto params = base;
        params.publisher_arrival_rate = 1.0 / idle;
        const double single = download_time_patient(params).download_time;
        const auto bundle = make_bundle(params, 4, PublisherScaling::kConstant);
        const double bundled = download_time_patient(bundle).download_time;
        const double gain = single - bundled;
        EXPECT_GT(gain, previous_gain) << "1/R=" << idle;
        previous_gain = gain;
    }
}

TEST(DownloadTimeThreshold, Theorem33Identity) {
    // P = exp(-r (u + B(m))) and E[T] = s/mu + P/r.
    const auto params = base_params();
    const std::size_t m = 3;
    const auto dt = download_time_threshold(params, m);
    const double bm = queueing::steady_state_residual_busy_period(
        m, {params.peer_arrival_rate, params.service_time()});
    const double p = std::exp(-params.publisher_arrival_rate *
                              (params.publisher_residence + bm));
    EXPECT_NEAR(dt.unavailability, p, 1e-12);
    EXPECT_NEAR(dt.download_time,
                params.service_time() + p / params.publisher_arrival_rate, 1e-9);
}

TEST(DownloadTimeThreshold, HigherThresholdHurts) {
    // Raising m makes content die earlier: unavailability grows with m.
    const auto params = base_params();
    double previous = 0.0;
    for (std::size_t m : {1u, 3u, 6u, 12u}) {
        const auto dt = download_time_threshold(params, m);
        EXPECT_GE(dt.unavailability, previous) << "m=" << m;
        previous = dt.unavailability;
    }
}

TEST(DownloadTimeThreshold, SaturatedResidualGivesZeroWait) {
    // A very large bundle's B(m) saturates; waiting must collapse to 0.
    const auto bundle = make_bundle(base_params(), 20, PublisherScaling::kConstant);
    const auto dt = download_time_threshold(bundle, 9);
    EXPECT_DOUBLE_EQ(dt.unavailability, 0.0);
    EXPECT_NEAR(dt.download_time, dt.service_time, 1e-9);
}

TEST(DownloadTimeSinglePublisher, Equation16Identity) {
    const auto params = base_params();
    const std::size_t m = 9;
    const auto dt = download_time_single_publisher(params, m);
    const double bm = queueing::steady_state_residual_busy_period(
        m, {params.peer_arrival_rate, params.service_time()});
    const double r = params.publisher_arrival_rate;
    const double expected_p =
        std::exp(-r * bm) / (params.publisher_residence * r + 1.0);
    EXPECT_NEAR(dt.unavailability, expected_p, 1e-12);
    EXPECT_NEAR(dt.download_time, params.service_time() + expected_p / r, 1e-9);
}

TEST(DownloadTimeSinglePublisher, NoPeerSupportReducesToDutyCycle) {
    // With negligible peer load, B(m) ~ 0 and P -> off/(on + off): the
    // probability of hitting the publisher's off state.
    auto params = base_params();
    params.peer_arrival_rate = 1e-7;
    const auto dt = download_time_single_publisher(params, 1);
    const double off = 1.0 / params.publisher_arrival_rate;
    const double expected = off / (off + params.publisher_residence);
    EXPECT_NEAR(dt.unavailability, expected, 1e-3);
}

TEST(DownloadTimeSinglePublisher, PredictsOptimalBundleNearExperiment) {
    // Section 4.3.1: with s/mu = 80 s, lambda = 1/60, off-mean 900 s,
    // on-mean 300 s and m = 9, the model's optimal K is 5 (the experiment
    // observed 4).
    const auto base = base_params();
    double best_time = 1e300;
    std::size_t best_k = 0;
    for (std::size_t k = 1; k <= 8; ++k) {
        const auto bundle = make_bundle(base, k, PublisherScaling::kConstant);
        const double t = download_time_single_publisher(bundle, 9).download_time;
        if (t < best_time) {
            best_time = t;
            best_k = k;
        }
    }
    EXPECT_GE(best_k, 4u);
    EXPECT_LE(best_k, 6u);
}

TEST(DownloadTime, WaitingTimeIsUnavailabilityOverR) {
    const auto params = base_params();
    for (const auto& dt : {download_time_patient(params),
                           download_time_threshold(params, 2),
                           download_time_single_publisher(params, 2)}) {
        EXPECT_NEAR(dt.waiting_time,
                    dt.unavailability / params.publisher_arrival_rate, 1e-12);
    }
}

}  // namespace
}  // namespace swarmavail::model
