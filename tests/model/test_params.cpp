#include "model/params.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace swarmavail::model {
namespace {

SwarmParams base_params() {
    SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 4.0e6 * 8.0;
    params.download_rate = 50.0e3 * 8.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

TEST(SwarmParams, ServiceTimeIsSizeOverRate) {
    const auto params = base_params();
    EXPECT_NEAR(params.service_time(), 80.0, 1e-9);
}

TEST(SwarmParams, OfferedLoad) {
    const auto params = base_params();
    EXPECT_NEAR(params.offered_load(), 80.0 / 60.0, 1e-9);
}

TEST(SwarmParams, ValidateAcceptsPositiveParameters) {
    EXPECT_NO_THROW(base_params().validate());
}

TEST(SwarmParams, ValidateRejectsEachNonPositiveField) {
    auto p = base_params();
    p.peer_arrival_rate = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = base_params();
    p.content_size = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = base_params();
    p.download_rate = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = base_params();
    p.publisher_arrival_rate = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = base_params();
    p.publisher_residence = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(MakeBundle, ProportionalScalingMultipliesEverything) {
    const auto base = base_params();
    const auto bundle = make_bundle(base, 4, PublisherScaling::kProportional);
    EXPECT_DOUBLE_EQ(bundle.peer_arrival_rate, 4.0 * base.peer_arrival_rate);
    EXPECT_DOUBLE_EQ(bundle.content_size, 4.0 * base.content_size);
    EXPECT_DOUBLE_EQ(bundle.publisher_arrival_rate, 4.0 * base.publisher_arrival_rate);
    EXPECT_DOUBLE_EQ(bundle.publisher_residence, 4.0 * base.publisher_residence);
    EXPECT_DOUBLE_EQ(bundle.download_rate, base.download_rate);
}

TEST(MakeBundle, ConstantScalingKeepsPublisherProcess) {
    const auto base = base_params();
    const auto bundle = make_bundle(base, 6, PublisherScaling::kConstant);
    EXPECT_DOUBLE_EQ(bundle.peer_arrival_rate, 6.0 * base.peer_arrival_rate);
    EXPECT_DOUBLE_EQ(bundle.content_size, 6.0 * base.content_size);
    EXPECT_DOUBLE_EQ(bundle.publisher_arrival_rate, base.publisher_arrival_rate);
    EXPECT_DOUBLE_EQ(bundle.publisher_residence, base.publisher_residence);
}

TEST(MakeBundle, SizeOneIsIdentity) {
    const auto base = base_params();
    const auto bundle = make_bundle(base, 1, PublisherScaling::kProportional);
    EXPECT_DOUBLE_EQ(bundle.peer_arrival_rate, base.peer_arrival_rate);
    EXPECT_DOUBLE_EQ(bundle.content_size, base.content_size);
}

TEST(MakeBundle, RejectsZeroK) {
    EXPECT_THROW((void)make_bundle(base_params(), 0, PublisherScaling::kConstant),
                 std::invalid_argument);
}

TEST(MakeBundleHeterogeneous, AggregatesDemandAndSize) {
    auto a = base_params();
    auto b = base_params();
    b.peer_arrival_rate = 1.0 / 120.0;
    b.content_size = 2.0e6 * 8.0;
    const auto bundle = make_bundle(std::vector<SwarmParams>{a, b}, 0.01, 200.0);
    EXPECT_DOUBLE_EQ(bundle.peer_arrival_rate,
                     a.peer_arrival_rate + b.peer_arrival_rate);
    EXPECT_DOUBLE_EQ(bundle.content_size, a.content_size + b.content_size);
    EXPECT_DOUBLE_EQ(bundle.publisher_arrival_rate, 0.01);
    EXPECT_DOUBLE_EQ(bundle.publisher_residence, 200.0);
}

TEST(MakeBundleHeterogeneous, RejectsMismatchedCapacities) {
    auto a = base_params();
    auto b = base_params();
    b.download_rate = 2.0 * a.download_rate;
    EXPECT_THROW((void)make_bundle(std::vector<SwarmParams>{a, b}, 0.01, 200.0),
                 std::invalid_argument);
}

TEST(MakeBundleHeterogeneous, RejectsEmptyConstituents) {
    EXPECT_THROW((void)make_bundle(std::vector<SwarmParams>{}, 0.01, 200.0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::model
