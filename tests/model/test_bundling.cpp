#include "model/bundling.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace swarmavail::model {
namespace {

/// The calibrated Figure 3 parameters (legend values; see EXPERIMENTS.md).
SwarmParams figure3_params() {
    SwarmParams params;
    params.peer_arrival_rate = 1.0 / 120.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 400.0;
    return params;
}

TEST(SweepBundleSizes, ProducesOnePointPerK) {
    BundleSweepConfig config;
    config.max_k = 6;
    const auto sweep = sweep_bundle_sizes(figure3_params(), config);
    ASSERT_EQ(sweep.size(), 6u);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        EXPECT_EQ(sweep[i].k, i + 1);
    }
}

TEST(SweepBundleSizes, ServiceGrowsLinearly) {
    BundleSweepConfig config;
    config.max_k = 5;
    const auto sweep = sweep_bundle_sizes(figure3_params(), config);
    for (const auto& point : sweep) {
        EXPECT_NEAR(point.service_time, 80.0 * static_cast<double>(point.k), 1e-9);
    }
}

TEST(SweepBundleSizes, UnavailabilityDecreasesInK) {
    BundleSweepConfig config;
    config.max_k = 8;
    const auto sweep = sweep_bundle_sizes(figure3_params(), config);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_LT(sweep[i].unavailability, sweep[i - 1].unavailability);
    }
}

TEST(SweepBundleSizes, DownloadTimeDecomposes) {
    BundleSweepConfig config;
    config.max_k = 4;
    for (const auto model : {DownloadModel::kPatient, DownloadModel::kThreshold,
                             DownloadModel::kSinglePublisher}) {
        config.model = model;
        config.coverage_threshold = 3;
        const auto sweep = sweep_bundle_sizes(figure3_params(), config);
        for (const auto& point : sweep) {
            EXPECT_NEAR(point.download_time, point.service_time + point.waiting_time,
                        1e-9);
        }
    }
}

TEST(OptimalBundleSize, PicksGlobalMinimum) {
    std::vector<BundleSweepPoint> sweep(4);
    for (std::size_t i = 0; i < 4; ++i) {
        sweep[i].k = i + 1;
    }
    sweep[0].download_time = 100.0;
    sweep[1].download_time = 50.0;
    sweep[2].download_time = 60.0;
    sweep[3].download_time = 55.0;
    EXPECT_EQ(optimal_bundle_size(sweep), 2u);
}

TEST(OptimalBundleSize, RejectsEmptySweep) {
    EXPECT_THROW((void)optimal_bundle_size({}), std::invalid_argument);
}

TEST(Figure3, OptimaMatchPaper) {
    // Paper Figure 3: K = 3 optimal for 1/R in [500, 1100]; K = 1 for the
    // remaining smaller interarrivals.
    const auto curves = figure3_curves(
        figure3_params(), {100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0,
                           900.0, 1000.0, 1100.0},
        8);
    ASSERT_EQ(curves.size(), 11u);
    for (const auto& curve : curves) {
        if (curve.publisher_interarrival <= 400.0) {
            EXPECT_EQ(curve.optimal_k, 1u) << "1/R=" << curve.publisher_interarrival;
        } else {
            EXPECT_EQ(curve.optimal_k, 3u) << "1/R=" << curve.publisher_interarrival;
        }
    }
}

TEST(Figure3, CurvesAreNonMonotoneInK) {
    // "as K increases the mean download time first ... decreases and
    // finally increases again": each high-1/R curve has an interior
    // minimum.
    const auto curves = figure3_curves(figure3_params(), {700.0, 900.0, 1100.0}, 8);
    for (const auto& curve : curves) {
        const auto& pts = curve.points;
        EXPECT_GT(pts.front().download_time, pts[curve.optimal_k - 1].download_time);
        EXPECT_GT(pts.back().download_time, pts[curve.optimal_k - 1].download_time);
    }
}

TEST(Figure3, BenefitGrowsAsRDecreases) {
    // "the benefits of bundling increase as the value of R decreases":
    // relative gain of the optimum over K=1 grows with 1/R.
    const auto curves =
        figure3_curves(figure3_params(), {500.0, 700.0, 900.0, 1100.0}, 8);
    double previous_gain = -1.0;
    for (const auto& curve : curves) {
        const double t1 = curve.points.front().download_time;
        const double topt = curve.points[curve.optimal_k - 1].download_time;
        const double gain = (t1 - topt) / t1;
        EXPECT_GT(gain, previous_gain) << "1/R=" << curve.publisher_interarrival;
        previous_gain = gain;
    }
}

TEST(Figure3, RejectsInvalidInterarrivals) {
    EXPECT_THROW((void)figure3_curves(figure3_params(), {}, 8), std::invalid_argument);
    EXPECT_THROW((void)figure3_curves(figure3_params(), {-5.0}, 8),
                 std::invalid_argument);
}

TEST(SweepBundleSizes, ThresholdModelUsesCoverage) {
    // With a large coverage threshold, self-sustaining busy periods need
    // larger K: unavailability at small K should exceed the m=1 variant.
    BundleSweepConfig low;
    low.max_k = 4;
    low.model = DownloadModel::kThreshold;
    low.coverage_threshold = 1;
    BundleSweepConfig high = low;
    high.coverage_threshold = 10;
    const auto sweep_low = sweep_bundle_sizes(figure3_params(), low);
    const auto sweep_high = sweep_bundle_sizes(figure3_params(), high);
    for (std::size_t i = 0; i < sweep_low.size(); ++i) {
        EXPECT_GE(sweep_high[i].unavailability, sweep_low[i].unavailability);
    }
}

}  // namespace
}  // namespace swarmavail::model
