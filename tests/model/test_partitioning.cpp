#include "model/partitioning.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace swarmavail::model {
namespace {

SwarmParams base_params() {
    SwarmParams params;
    params.peer_arrival_rate = 1.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

PartitionConfig config_for(std::vector<double> lambdas) {
    PartitionConfig config;
    config.lambdas = std::move(lambdas);
    return config;
}

/// All files of a partition, sorted.
std::vector<std::size_t> flatten(const Partition& partition) {
    std::vector<std::size_t> files;
    for (const auto& bundle : partition) {
        files.insert(files.end(), bundle.begin(), bundle.end());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(BundleCost, GrowsWithBundleSizeWhenAvailable) {
    // With a highly available swarm, cost ~ service: linear in files.
    auto params = base_params();
    const auto config = config_for({1.0});
    const double one = bundle_cost(params, 0.5, 1, config);
    const double two = bundle_cost(params, 0.5, 2, config);
    EXPECT_GT(two, one);
}

TEST(BundleCost, PenaltyAddsPerExtraFile) {
    auto config = config_for({1.0});
    config.per_extra_file_penalty = 100.0;
    const double without = bundle_cost(base_params(), 0.1, 3, config_for({1.0}));
    const double with = bundle_cost(base_params(), 0.1, 3, config);
    EXPECT_NEAR(with - without, 200.0, 1e-9);
}

TEST(PartitionCost, SingletonPartitionMatchesIsolatedSwarms) {
    const auto config = config_for({0.02, 0.01});
    const Partition singletons{{0}, {1}};
    const double cost = partition_cost(base_params(), singletons, config);
    const double c0 = bundle_cost(base_params(), 0.02, 1, config);
    const double c1 = bundle_cost(base_params(), 0.01, 1, config);
    const double expected = (0.02 * c0 + 0.01 * c1) / 0.03;
    EXPECT_NEAR(cost, expected, 1e-9);
}

TEST(PartitionCost, RejectsIncompleteOrDuplicatedPartitions) {
    const auto config = config_for({0.02, 0.01});
    EXPECT_THROW((void)partition_cost(base_params(), {{0}}, config),
                 std::invalid_argument);
    EXPECT_THROW((void)partition_cost(base_params(), {{0}, {0, 1}}, config),
                 std::invalid_argument);
    EXPECT_THROW((void)partition_cost(base_params(), {{0}, {5}}, config),
                 std::invalid_argument);
    EXPECT_THROW((void)partition_cost(base_params(), {}, config),
                 std::invalid_argument);
}

TEST(OptimalPartitionExhaustive, CoversAllFilesExactlyOnce) {
    const auto config = config_for({0.02, 0.008, 0.004, 0.002});
    const auto partition = optimal_partition_exhaustive(base_params(), config);
    const auto files = flatten(partition);
    EXPECT_EQ(files, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(OptimalPartitionExhaustive, UnpopularFilesGetBundled) {
    // Four very unpopular files: isolated swarms are mostly unavailable,
    // so the optimum bundles them rather than leaving singletons.
    const auto config = config_for({0.003, 0.0025, 0.002, 0.0015});
    const auto partition = optimal_partition_exhaustive(base_params(), config);
    const double bundled_cost = partition_cost(base_params(), partition, config);
    const double singleton_cost =
        partition_cost(base_params(), {{0}, {1}, {2}, {3}}, config);
    EXPECT_LT(bundled_cost, singleton_cost);
    // At least one bundle holds >= 2 files.
    std::size_t largest = 0;
    for (const auto& bundle : partition) {
        largest = std::max(largest, bundle.size());
    }
    EXPECT_GE(largest, 2u);
}

TEST(OptimalPartitionExhaustive, PopularFilesStaySolo) {
    // Two very popular files self-sustain alone; bundling only adds cost.
    const auto config = config_for({0.2, 0.15});
    const auto partition = optimal_partition_exhaustive(base_params(), config);
    EXPECT_EQ(partition.size(), 2u);
}

TEST(OptimalPartitionContiguous, MatchesExhaustiveOnSmallInstances) {
    for (const auto& lambdas :
         {std::vector<double>{0.05, 0.004, 0.003, 0.002},
          std::vector<double>{0.003, 0.0025, 0.002, 0.0015},
          std::vector<double>{0.2, 0.1, 0.001}}) {
        const auto config = config_for(lambdas);
        const auto exhaustive = optimal_partition_exhaustive(base_params(), config);
        const auto contiguous = optimal_partition_contiguous(base_params(), config);
        const double exhaustive_cost =
            partition_cost(base_params(), exhaustive, config);
        const double contiguous_cost =
            partition_cost(base_params(), contiguous, config);
        // Contiguity is a restriction, so >=; on these instances the optima
        // coincide (demand-sorted bundling is natural).
        EXPECT_GE(contiguous_cost, exhaustive_cost - 1e-9);
        EXPECT_NEAR(contiguous_cost, exhaustive_cost, 0.02 * exhaustive_cost);
    }
}

TEST(OptimalPartitionContiguous, HandlesLargerCatalogs) {
    std::vector<double> lambdas;
    for (int i = 1; i <= 30; ++i) {
        lambdas.push_back(0.05 / i);
    }
    const auto config = config_for(lambdas);
    const auto partition = optimal_partition_contiguous(base_params(), config);
    const auto files = flatten(partition);
    std::vector<std::size_t> expected(30);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(files, expected);
    // The optimum beats both extremes.
    const double cost = partition_cost(base_params(), partition, config);
    Partition all_solo;
    for (std::size_t i = 0; i < 30; ++i) {
        all_solo.push_back({i});
    }
    Partition one_bundle(1);
    one_bundle[0] = expected;
    EXPECT_LE(cost, partition_cost(base_params(), all_solo, config) + 1e-9);
    EXPECT_LE(cost, partition_cost(base_params(), one_bundle, config) + 1e-9);
}

TEST(OptimalPartitionContiguous, PenaltyDiscouragesGiantBundles) {
    std::vector<double> lambdas(8, 0.002);
    auto cheap = config_for(lambdas);
    auto pricey = config_for(lambdas);
    pricey.per_extra_file_penalty = 500.0;
    const auto big = optimal_partition_contiguous(base_params(), cheap);
    const auto small = optimal_partition_contiguous(base_params(), pricey);
    std::size_t big_max = 0;
    std::size_t small_max = 0;
    for (const auto& bundle : big) {
        big_max = std::max(big_max, bundle.size());
    }
    for (const auto& bundle : small) {
        small_max = std::max(small_max, bundle.size());
    }
    EXPECT_GE(big_max, small_max);
}

TEST(OptimalPartitionExhaustive, RejectsTooManyFiles) {
    const auto config = config_for(std::vector<double>(11, 0.01));
    EXPECT_THROW((void)optimal_partition_exhaustive(base_params(), config),
                 std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::model
