#include "model/mixed_bundling.hpp"

#include <gtest/gtest.h>

#include "model/availability.hpp"

namespace swarmavail::model {
namespace {

SwarmParams base_params() {
    SwarmParams params;
    params.peer_arrival_rate = 1.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

MixedBundlingConfig base_config(double q) {
    MixedBundlingConfig config;
    config.lambdas = {1.0 / 60.0, 1.0 / 120.0, 1.0 / 240.0};
    config.bundle_opt_in = q;
    return config;
}

TEST(MixedBundling, ZeroOptInRecoversIsolatedSwarms) {
    const auto rows = evaluate_mixed_bundling(base_params(), base_config(0.0));
    ASSERT_EQ(rows.size(), 3u);
    for (const auto& row : rows) {
        EXPECT_DOUBLE_EQ(row.p_bundle, 1.0);
        SwarmParams isolated = base_params();
        isolated.peer_arrival_rate = row.lambda;
        const double expected = availability_impatient(isolated).unavailability;
        EXPECT_NEAR(row.p_mixed, expected, 1e-12);
    }
}

TEST(MixedBundling, FullOptInRecoversPureBundle) {
    const auto rows = evaluate_mixed_bundling(base_params(), base_config(1.0));
    SwarmParams bundle = base_params();
    bundle.peer_arrival_rate = 1.0 / 60.0 + 1.0 / 120.0 + 1.0 / 240.0;
    bundle.content_size = 3.0 * 80.0;
    const double expected = availability_impatient(bundle).unavailability;
    for (const auto& row : rows) {
        EXPECT_DOUBLE_EQ(row.p_individual, 1.0);
        EXPECT_NEAR(row.p_mixed, expected, 1e-12);
    }
}

TEST(MixedBundling, UnavailabilityMonotoneInOptIn) {
    double previous = 1.0;
    for (double q : {0.0, 0.1, 0.3, 0.6, 1.0}) {
        const auto rows = evaluate_mixed_bundling(base_params(), base_config(q));
        const double aggregate = request_unavailability(rows, q);
        EXPECT_LT(aggregate, previous + 1e-12) << "q=" << q;
        previous = aggregate;
    }
}

TEST(MixedBundling, SmallOptInAlreadyHelpsSubstantially) {
    // The Section 5 claim: a small opting fraction yields a large
    // availability gain.
    const auto isolated = evaluate_mixed_bundling(base_params(), base_config(0.0));
    const auto mixed = evaluate_mixed_bundling(base_params(), base_config(0.15));
    const double p0 = request_unavailability(isolated, 0.0);
    const double p15 = request_unavailability(mixed, 0.15);
    EXPECT_LT(p15, 0.7 * p0);
}

TEST(MixedBundling, MixedProductStructure) {
    const auto rows = evaluate_mixed_bundling(base_params(), base_config(0.3));
    for (const auto& row : rows) {
        EXPECT_NEAR(row.p_mixed, row.p_individual * row.p_bundle, 1e-12);
        EXPECT_GE(row.download_time_single, base_params().service_time());
        EXPECT_GE(row.download_time_bundle, 3.0 * base_params().service_time());
    }
}

TEST(MixedBundling, UnpopularFilesHaveHigherIndividualUnavailability) {
    const auto rows = evaluate_mixed_bundling(base_params(), base_config(0.2));
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_GE(rows[i].p_individual, rows[i - 1].p_individual);
    }
}

TEST(MixedBundling, RejectsInvalidConfig) {
    MixedBundlingConfig config;
    EXPECT_THROW((void)evaluate_mixed_bundling(base_params(), config),
                 std::invalid_argument);
    config.lambdas = {0.1};
    config.bundle_opt_in = 1.5;
    EXPECT_THROW((void)evaluate_mixed_bundling(base_params(), config),
                 std::invalid_argument);
    config.bundle_opt_in = 0.5;
    config.lambdas = {0.1, 0.0};
    EXPECT_THROW((void)evaluate_mixed_bundling(base_params(), config),
                 std::invalid_argument);
    EXPECT_THROW((void)request_unavailability({}, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::model
