#include "queueing/general_busy_period.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/monte_carlo.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace swarmavail::queueing {
namespace {

TEST(InitiatorDistributions, ExponentialTransform) {
    const auto dist = exponential_initiator(10.0);
    EXPECT_DOUBLE_EQ(dist.mean, 10.0);
    EXPECT_DOUBLE_EQ(dist.laplace(0.0), 1.0);
    EXPECT_NEAR(dist.laplace(0.1), 1.0 / 2.0, 1e-12);
}

TEST(InitiatorDistributions, DeterministicTransform) {
    const auto dist = deterministic_initiator(5.0);
    EXPECT_DOUBLE_EQ(dist.mean, 5.0);
    EXPECT_NEAR(dist.laplace(0.2), std::exp(-1.0), 1e-12);
}

TEST(InitiatorDistributions, RejectNonPositive) {
    EXPECT_THROW((void)exponential_initiator(0.0), std::invalid_argument);
    EXPECT_THROW((void)deterministic_initiator(-1.0), std::invalid_argument);
}

TEST(BusyPeriodGeneral, ExponentialInitiatorMatchesEquation19) {
    const double beta = 0.05;
    const double alpha = 30.0;
    const double theta = 12.0;
    const auto via_eq18 =
        busy_period_general(beta, alpha, exponential_initiator(theta));
    const auto via_eq19 = busy_period_exceptional(beta, alpha, theta);
    EXPECT_NEAR(via_eq18.value, via_eq19.value, 1e-9 * via_eq19.value);
}

TEST(BusyPeriodGeneral, EqualInitiatorMatchesEquation20) {
    const double beta = 0.1;
    const double alpha = 20.0;
    const auto via_eq18 = busy_period_general(beta, alpha, exponential_initiator(alpha));
    const auto via_eq20 = busy_period_exponential(beta, alpha);
    EXPECT_NEAR(via_eq18.value, via_eq20.value, 1e-8 * via_eq20.value);
}

TEST(BusyPeriodGeneral, DeterministicInitiatorMatchesMonteCarlo) {
    const double beta = 0.04;
    const double alpha = 25.0;
    const double length = 60.0;
    const auto theory = busy_period_general(beta, alpha, deterministic_initiator(length));
    Rng rng{211};
    StreamingStats mc;
    for (int i = 0; i < 100000; ++i) {
        mc.add(sim::sample_busy_period(
            rng, beta, [length](Rng&) { return length; },
            [alpha](Rng& r) { return r.exponential_mean(alpha); }));
    }
    EXPECT_NEAR(theory.value, mc.mean(), 5.0 * mc.ci95_halfwidth());
}

TEST(BusyPeriodGeneral, HypoexponentialInitiatorMatchesMonteCarlo) {
    const double beta = 0.03;
    const double alpha = 40.0;
    const auto hypo = Hypoexponential{{0.05, 0.1}};
    const auto theory = busy_period_general(beta, alpha, hypoexponential_initiator(hypo));
    Rng rng{223};
    StreamingStats mc;
    for (int i = 0; i < 100000; ++i) {
        mc.add(sim::sample_busy_period(
            rng, beta, [&hypo](Rng& r) { return hypo.sample(r); },
            [alpha](Rng& r) { return r.exponential_mean(alpha); }));
    }
    EXPECT_NEAR(theory.value, mc.mean(), 5.0 * mc.ci95_halfwidth());
}

TEST(BusyPeriodGeneral, LongerInitiatorsDominate) {
    const double beta = 0.05;
    const double alpha = 20.0;
    double previous = 0.0;
    for (double theta : {5.0, 15.0, 45.0}) {
        const auto result =
            busy_period_general(beta, alpha, exponential_initiator(theta));
        EXPECT_GT(result.value, previous);
        previous = result.value;
    }
}

TEST(BusyPeriodGeneral, RejectsInvalidArguments) {
    const auto initiator = exponential_initiator(10.0);
    EXPECT_THROW((void)busy_period_general(0.0, 1.0, initiator), std::invalid_argument);
    EXPECT_THROW((void)busy_period_general(1.0, 0.0, initiator), std::invalid_argument);
    InitiatorDistribution bad;
    bad.mean = 1.0;  // no transform
    EXPECT_THROW((void)busy_period_general(1.0, 1.0, bad), std::invalid_argument);
}

TEST(ResidualViaInitiator, MatchesEquation12Implementation) {
    // Lemma 3.3 derives B(n, 0) from eq. 18 with the hypoexponential
    // max-initiator; it must agree with the direct eq. 12 series.
    const ResidualParams params{1.0 / 60.0, 80.0};
    for (std::size_t n : {1u, 2u, 4u, 7u}) {
        const auto via_initiator = residual_busy_period_via_initiator(n, params);
        const auto via_eq12 = residual_busy_period_to_empty(n, params);
        EXPECT_NEAR(via_initiator.value, via_eq12.value, 1e-6 * via_eq12.value)
            << "n=" << n;
    }
}

TEST(ResidualViaInitiator, RejectsZeroPeers) {
    EXPECT_THROW((void)residual_busy_period_via_initiator(0, {0.1, 10.0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::queueing
