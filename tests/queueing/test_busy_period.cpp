#include "queueing/busy_period.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sim/monte_carlo.hpp"
#include "util/random.hpp"
#include "util/series.hpp"
#include "util/stats.hpp"

namespace swarmavail::queueing {
namespace {

TEST(BusyPeriodExponential, MatchesClosedForm) {
    const auto result = busy_period_exponential(0.1, 20.0);
    EXPECT_NEAR(result.value, (std::exp(2.0) - 1.0) / 0.1, 1e-9);
    EXPECT_NEAR(result.log_value, std::log(result.value), 1e-12);
}

TEST(BusyPeriodExponential, SmallLoadApproachesServiceTime) {
    // For beta*alpha -> 0, E[B] -> alpha (the lone customer's residence).
    const auto result = busy_period_exponential(1e-9, 50.0);
    EXPECT_NEAR(result.value, 50.0, 1e-5);
}

TEST(BusyPeriodExponential, LogValueFiniteWhenValueOverflows) {
    const auto result = busy_period_exponential(1.0, 800.0);
    EXPECT_TRUE(std::isinf(result.value));
    EXPECT_NEAR(result.log_value, 800.0 - std::log(1.0), 1.0);
}

TEST(BusyPeriodExponential, RejectsNonPositiveParameters) {
    EXPECT_THROW((void)busy_period_exponential(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)busy_period_exponential(1.0, -1.0), std::invalid_argument);
}

TEST(BusyPeriodExceptional, ReducesToExponentialWhenThetaEqualsAlpha) {
    const auto plain = busy_period_exponential(0.2, 15.0);
    const auto exceptional = busy_period_exceptional(0.2, 15.0, 15.0);
    EXPECT_NEAR(exceptional.value, plain.value, 1e-8 * plain.value);
}

TEST(BusyPeriodExceptional, LongerInitiatorExtendsBusyPeriod) {
    const auto short_first = busy_period_exceptional(0.1, 10.0, 5.0);
    const auto long_first = busy_period_exceptional(0.1, 10.0, 50.0);
    EXPECT_GT(long_first.value, short_first.value);
}

TEST(BusyPeriodExceptional, MatchesMonteCarlo) {
    const double beta = 0.08;
    const double alpha = 25.0;
    const double theta = 60.0;
    const auto theory = busy_period_exceptional(beta, alpha, theta);
    Rng rng{101};
    StreamingStats mc;
    const auto first = [theta](Rng& r) { return r.exponential_mean(theta); };
    const auto later = [alpha](Rng& r) { return r.exponential_mean(alpha); };
    for (int i = 0; i < 100000; ++i) {
        mc.add(sim::sample_busy_period(rng, beta, first, later));
    }
    EXPECT_NEAR(theory.value, mc.mean(), 4.0 * mc.ci95_halfwidth());
}

TEST(BusyPeriodMixed, ReducesToExceptionalAtDegenerateMixture) {
    const auto exceptional = busy_period_exceptional(0.1, 30.0, 12.0);
    const auto via_q1 = busy_period_mixed({0.1, 12.0, 1.0, 30.0, 99.0});
    const auto via_q0 = busy_period_mixed({0.1, 12.0, 0.0, 99.0, 30.0});
    EXPECT_NEAR(via_q1.value, exceptional.value, 1e-9 * exceptional.value);
    EXPECT_NEAR(via_q0.value, exceptional.value, 1e-9 * exceptional.value);
}

TEST(BusyPeriodMixed, SymmetricUnderClassSwap) {
    const auto a = busy_period_mixed({0.05, 20.0, 0.3, 70.0, 10.0});
    const auto b = busy_period_mixed({0.05, 20.0, 0.7, 10.0, 70.0});
    EXPECT_NEAR(a.value, b.value, 1e-9 * a.value);
}

TEST(BusyPeriodMixed, EqualClassMeansMatchSingleClass) {
    // When alpha1 == alpha2 the mixture weights are irrelevant.
    const auto mixed = busy_period_mixed({0.1, 25.0, 0.37, 25.0, 25.0});
    const auto plain = busy_period_exponential(0.1, 25.0);
    EXPECT_NEAR(mixed.value, plain.value, 1e-8 * plain.value);
}

struct MixedMcCase {
    double beta;
    double theta;
    double q1;
    double alpha1;
    double alpha2;
};

class BusyPeriodMixedMc : public ::testing::TestWithParam<MixedMcCase> {};

TEST_P(BusyPeriodMixedMc, MatchesMonteCarlo) {
    const auto p = GetParam();
    const auto theory = busy_period_mixed({p.beta, p.theta, p.q1, p.alpha1, p.alpha2});
    Rng rng{7};
    const sim::MixedBusyPeriodMc mc_params{p.beta, p.theta, p.q1, p.alpha1, p.alpha2};
    const auto mc = sim::sample_mixed_busy_periods(rng, mc_params, 60000);
    EXPECT_NEAR(theory.value, mc.mean(), 5.0 * mc.ci95_halfwidth())
        << "beta=" << p.beta << " theta=" << p.theta << " q1=" << p.q1;
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, BusyPeriodMixedMc,
    ::testing::Values(MixedMcCase{0.02, 10.0, 0.5, 40.0, 10.0},
                      MixedMcCase{0.05, 30.0, 0.7, 80.0, 15.0},
                      MixedMcCase{0.1, 5.0, 0.2, 20.0, 60.0},
                      MixedMcCase{0.01, 100.0, 0.9, 120.0, 100.0},
                      MixedMcCase{0.2, 8.0, 0.6, 12.0, 4.0}));

TEST(BusyPeriodMixed, MonotoneInArrivalRate) {
    double previous = 0.0;
    for (double beta : {0.01, 0.02, 0.05, 0.1, 0.2}) {
        const auto result = busy_period_mixed({beta, 20.0, 0.8, 50.0, 20.0});
        EXPECT_GT(result.value, previous);
        previous = result.value;
    }
}

TEST(BusyPeriodMixed, MonotoneInServiceTime) {
    double previous = 0.0;
    for (double alpha1 : {10.0, 20.0, 40.0, 80.0}) {
        const auto result = busy_period_mixed({0.05, 20.0, 0.8, alpha1, 20.0});
        EXPECT_GT(result.value, previous);
        previous = result.value;
    }
}

TEST(BusyPeriodMixed, RejectsInvalidParameters) {
    EXPECT_THROW((void)busy_period_mixed({0.0, 1.0, 0.5, 1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW((void)busy_period_mixed({1.0, 0.0, 0.5, 1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW((void)busy_period_mixed({1.0, 1.0, 1.5, 1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW((void)busy_period_mixed({1.0, 1.0, 0.5, 0.0, 1.0}), std::invalid_argument);
    EXPECT_THROW((void)busy_period_mixed({1.0, 1.0, 0.5, 1.0, -2.0}), std::invalid_argument);
}

TEST(ResidualBusyPeriod, ZeroPeersIsZero) {
    const ResidualParams params{0.01, 80.0};
    EXPECT_DOUBLE_EQ(residual_busy_period_to_empty(0, params).value, 0.0);
}

TEST(ResidualBusyPeriod, OnePeerNoArrivalsLimit) {
    // With lambda -> 0, B(1,0) -> service (a single exponential drain).
    const ResidualParams params{1e-9, 80.0};
    EXPECT_NEAR(residual_busy_period_to_empty(1, params).value, 80.0, 1e-4);
}

TEST(ResidualBusyPeriod, HarmonicDrainForSmallLambda) {
    // With lambda -> 0, B(n,0) -> service * H_n (max of n exponentials).
    const ResidualParams params{1e-9, 60.0};
    const double h3 = 1.0 + 0.5 + 1.0 / 3.0;
    EXPECT_NEAR(residual_busy_period_to_empty(3, params).value, 60.0 * h3, 1e-3);
}

TEST(ResidualBusyPeriod, RecursionIdentity) {
    // B(n, m) = B(n, 0) - B(m, 0) (Lemma 3.3).
    const ResidualParams params{1.0 / 60.0, 80.0};
    const double b52 = residual_busy_period(5, 2, params);
    const double b50 = residual_busy_period_to_empty(5, params).value;
    const double b20 = residual_busy_period_to_empty(2, params).value;
    EXPECT_NEAR(b52, b50 - b20, 1e-9 * b50);
}

TEST(ResidualBusyPeriod, ZeroWhenAlreadyAtThreshold) {
    const ResidualParams params{0.01, 50.0};
    EXPECT_DOUBLE_EQ(residual_busy_period(3, 3, params), 0.0);
    EXPECT_DOUBLE_EQ(residual_busy_period(2, 5, params), 0.0);
}

struct ResidualMcCase {
    std::size_t n;
    std::size_t m;
    double lambda;
    double service;
};

class ResidualBusyPeriodMc : public ::testing::TestWithParam<ResidualMcCase> {};

TEST_P(ResidualBusyPeriodMc, MatchesBirthDeathSimulation) {
    const auto p = GetParam();
    const double theory = residual_busy_period(p.n, p.m, {p.lambda, p.service});
    Rng rng{17};
    StreamingStats mc;
    for (int i = 0; i < 60000; ++i) {
        mc.add(sim::sample_residual_busy_period(rng, p.n, p.m, p.lambda, p.service));
    }
    EXPECT_NEAR(theory, mc.mean(), 5.0 * mc.ci95_halfwidth())
        << "n=" << p.n << " m=" << p.m;
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, ResidualBusyPeriodMc,
    ::testing::Values(ResidualMcCase{5, 0, 1.0 / 60.0, 80.0},
                      ResidualMcCase{5, 2, 1.0 / 60.0, 80.0},
                      ResidualMcCase{10, 4, 1.0 / 30.0, 40.0},
                      ResidualMcCase{3, 1, 1.0 / 150.0, 120.0},
                      ResidualMcCase{8, 7, 0.05, 50.0}));

TEST(SteadyStateResidual, MatchesMonteCarlo) {
    const std::size_t m = 3;
    const double lambda = 1.0 / 20.0;
    const double service = 100.0;  // rho = 5
    const double theory = steady_state_residual_busy_period(m, {lambda, service});
    Rng rng{23};
    StreamingStats mc;
    for (int i = 0; i < 60000; ++i) {
        mc.add(sim::sample_steady_state_residual(rng, m, lambda, service));
    }
    EXPECT_NEAR(theory, mc.mean(), 5.0 * mc.ci95_halfwidth());
}

TEST(SteadyStateResidual, ZeroWhenThresholdAboveTypicalOccupancy) {
    // rho = 0.5, threshold 20: essentially no mass above the threshold.
    const double value = steady_state_residual_busy_period(20, {0.01, 50.0});
    EXPECT_LT(value, 1e-6);
}

TEST(SteadyStateResidual, GrowsWithOfferedLoad) {
    double previous = -1.0;
    for (double lambda : {0.01, 0.02, 0.04, 0.08}) {
        const double value = steady_state_residual_busy_period(2, {lambda, 80.0});
        EXPECT_GT(value, previous);
        previous = value;
    }
}

TEST(SteadyStateResidual, Figure4RegressionValues) {
    // Section 4.2: mu = 33 KBps, s = 4 MB, lambda = 1/150 peers/s per file,
    // m = 9. The bundle of K files has lambda_B = K lambda, S = K s. The
    // paper reports the self-sustainability boundary between K=4 and K=5+;
    // these values pin our implementation (computed from eq. 13).
    const double service_per_file = 4000.0 / 33.0;  // ~121 s
    auto bm = [&](int k) {
        return steady_state_residual_busy_period(
            9, {static_cast<double>(k) / 150.0, static_cast<double>(k) * service_per_file});
    };
    EXPECT_LT(bm(1), 1e-3);     // effectively zero
    EXPECT_LT(bm(2), 1.0);      // still negligible
    EXPECT_GT(bm(4), 500.0);    // minutes-scale
    EXPECT_GT(bm(5), 10000.0);  // hours-scale: self-sustaining in a 1500 s run
    EXPECT_GT(bm(6), bm(5));    // strictly growing in K
}

TEST(DownwardPassageTime, SumMatchesEquation12) {
    // sum_{i=1}^{n} d_i must equal eq. 12's B(n, 0) for moderate loads.
    const ResidualParams params{1.0 / 60.0, 80.0};
    for (std::size_t n : {1u, 3u, 6u, 10u}) {
        double via_passage = 0.0;
        for (std::size_t i = 1; i <= n; ++i) {
            via_passage += downward_passage_time(i, params);
        }
        const double via_eq12 = residual_busy_period_to_empty(n, params).value;
        EXPECT_NEAR(via_passage, via_eq12, 1e-8 * via_eq12) << "n=" << n;
    }
}

TEST(DownwardPassageTime, NoCancellationAtHugeLoad) {
    // rho = 533 (a K=20 bundle): the naive B(10,0) - B(9,0) difference
    // rounds to 0; the passage-time form must stay astronomically large.
    const ResidualParams params{20.0 / 60.0, 1600.0};
    const double d10 = downward_passage_time(10, params);
    EXPECT_TRUE(d10 > 1e100 || std::isinf(d10));
    EXPECT_TRUE(residual_busy_period(10, 9, params) > 1e100 ||
                std::isinf(residual_busy_period(10, 9, params)));
}

TEST(DownwardPassageTime, DecreasesInStartingPopulation) {
    // Higher populations drain to the next level faster (more servers).
    const ResidualParams params{0.001, 50.0};  // rho tiny: d_i ~ service/i
    double previous = 1e300;
    for (std::size_t i = 1; i <= 5; ++i) {
        const double d = downward_passage_time(i, params);
        EXPECT_LT(d, previous);
        EXPECT_NEAR(d, 50.0 / static_cast<double>(i), 2.0);
        previous = d;
    }
}

TEST(BusyPeriodResults, LogValueConsistentWithValue) {
    for (const auto& result :
         {busy_period_exponential(0.05, 40.0), busy_period_exceptional(0.05, 40.0, 10.0),
          busy_period_mixed({0.05, 10.0, 0.5, 40.0, 10.0})}) {
        EXPECT_NEAR(result.log_value, std::log(result.value), 1e-9);
    }
}

TEST(BusyPeriodMixed, HugeBundleSaturatesGracefully) {
    // K = 40-like parameterization: value saturates, log stays finite.
    const auto result = busy_period_mixed({40.0 / 60.0, 300.0, 0.98, 3200.0, 300.0});
    EXPECT_TRUE(std::isinf(result.value));
    EXPECT_TRUE(std::isfinite(result.log_value));
    EXPECT_GT(result.log_value, 100.0);
}

}  // namespace
}  // namespace swarmavail::queueing
