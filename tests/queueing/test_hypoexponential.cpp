#include "queueing/hypoexponential.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace swarmavail::queueing {
namespace {

TEST(Hypoexponential, MeanIsSumOfStageMeans) {
    const Hypoexponential dist{{0.5, 0.25, 1.0}};
    EXPECT_NEAR(dist.mean(), 2.0 + 4.0 + 1.0, 1e-12);
}

TEST(Hypoexponential, VarianceIsSumOfStageVariances) {
    const Hypoexponential dist{{0.5, 0.25}};
    EXPECT_NEAR(dist.variance(), 4.0 + 16.0, 1e-12);
}

TEST(Hypoexponential, LaplaceTransformAtZeroIsOne) {
    const Hypoexponential dist{{1.0, 2.0, 3.0}};
    EXPECT_DOUBLE_EQ(dist.laplace(0.0), 1.0);
}

TEST(Hypoexponential, LaplaceTransformKnownValue) {
    // Single stage Exp(rate): L(s) = rate / (rate + s).
    const Hypoexponential dist{{2.0}};
    EXPECT_NEAR(dist.laplace(3.0), 2.0 / 5.0, 1e-12);
}

TEST(Hypoexponential, LaplaceTransformIsDecreasing) {
    const Hypoexponential dist{{1.0, 0.5}};
    double previous = 1.0;
    for (double s : {0.1, 0.5, 1.0, 5.0}) {
        const double value = dist.laplace(s);
        EXPECT_LT(value, previous);
        previous = value;
    }
}

TEST(Hypoexponential, SampleMeanMatches) {
    const Hypoexponential dist{{0.1, 0.2}};
    Rng rng{61};
    StreamingStats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(dist.sample(rng));
    }
    EXPECT_NEAR(stats.mean(), dist.mean(), 4.0 * stats.ci95_halfwidth());
}

TEST(Hypoexponential, RejectsInvalidRates) {
    EXPECT_THROW((Hypoexponential{{}}), std::invalid_argument);
    EXPECT_THROW((Hypoexponential{{1.0, 0.0}}), std::invalid_argument);
    EXPECT_THROW((Hypoexponential{{-1.0}}), std::invalid_argument);
}

TEST(MaxOfIidExponentials, MeanIsHarmonicSum) {
    // E[max of n Exp(rate)] = (1/rate) * H_n (Lemma 3.3's virtual customer).
    const double rate = 0.05;
    const auto dist = Hypoexponential::max_of_iid_exponentials(4, rate);
    const double h4 = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
    EXPECT_NEAR(dist.mean(), h4 / rate, 1e-9);
    EXPECT_EQ(dist.stages(), 4u);
}

TEST(MaxOfIidExponentials, DistributionMatchesDirectMaximum) {
    // Sample max{X_1..X_5} directly and via the stage decomposition; the
    // means and variances must agree.
    const double rate = 0.2;
    const auto dist = Hypoexponential::max_of_iid_exponentials(5, rate);
    Rng rng{67};
    StreamingStats direct;
    StreamingStats staged;
    for (int i = 0; i < 100000; ++i) {
        double max_value = 0.0;
        for (int j = 0; j < 5; ++j) {
            max_value = std::max(max_value, rng.exponential_rate(rate));
        }
        direct.add(max_value);
        staged.add(dist.sample(rng));
    }
    EXPECT_NEAR(direct.mean(), staged.mean(),
                4.0 * (direct.ci95_halfwidth() + staged.ci95_halfwidth()));
    EXPECT_NEAR(direct.stddev(), staged.stddev(), 0.05 * direct.stddev());
}

TEST(MaxOfIidExponentials, LaplaceMatchesLemma33Form) {
    // Lemma 3.3: Laplace transform prod_i (i mu / s)/(s + i mu / s) with the
    // paper's notation; in rate form prod_i (i r)/(i r + s).
    const double rate = 0.1;
    const auto dist = Hypoexponential::max_of_iid_exponentials(3, rate);
    const double s = 0.07;
    double expected = 1.0;
    for (int i = 1; i <= 3; ++i) {
        expected *= (i * rate) / (i * rate + s);
    }
    EXPECT_NEAR(dist.laplace(s), expected, 1e-12);
}

TEST(MginfOccupancy, PoissonSteadyState) {
    const double rho = 2.5;
    double total = 0.0;
    for (std::size_t k = 0; k < 40; ++k) {
        total += mginf_occupancy_pmf(k, rho);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(mginf_occupancy_pmf(0, rho), std::exp(-rho), 1e-12);
}

TEST(MginfOccupancy, MeanViaLittlesLaw) {
    EXPECT_DOUBLE_EQ(mginf_mean_occupancy(0.5, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(mginf_mean_occupancy(0.0, 10.0), 0.0);
}

}  // namespace
}  // namespace swarmavail::queueing
