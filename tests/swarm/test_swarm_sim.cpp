#include "swarm/swarm_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "util/telemetry.hpp"

namespace swarmavail::swarm {
namespace {

SwarmSimConfig base_config() {
    SwarmSimConfig config;
    config.bundle_size = 1;
    config.file_size = 4.0e6 * 8.0;
    config.pieces_per_file = 8;
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(50.0 * kKBps);
    config.publisher_capacity = 100.0 * kKBps;
    config.publisher = PublisherBehavior::kAlwaysOn;
    config.horizon = 3000.0;
    config.seed = 1;
    return config;
}

TEST(SwarmSim, AlwaysOnPublisherServesEveryone) {
    auto config = base_config();
    config.drain_after_horizon = true;
    const auto result = run_swarm_sim(config);
    EXPECT_GT(result.arrivals, 20u);
    EXPECT_EQ(result.completions, result.arrivals);
    EXPECT_EQ(result.stuck_at_horizon, 0u);
    EXPECT_NEAR(result.available_fraction, 1.0, 1e-9);
}

TEST(SwarmSim, DownloadTimeNearServiceTimeWhenAvailable) {
    auto config = base_config();
    config.drain_after_horizon = true;
    const auto result = run_swarm_sim(config);
    // s/mu = 4 MB / 50 KBps = 80 s; allow protocol overhead.
    EXPECT_GT(result.download_times.mean(), 60.0);
    EXPECT_LT(result.download_times.mean(), 200.0);
}

TEST(SwarmSim, PeerRecordsConsistent) {
    auto config = base_config();
    config.publisher = PublisherBehavior::kOnOff;
    const auto result = run_swarm_sim(config);
    EXPECT_EQ(result.peers.size(), result.arrivals);
    std::size_t completed = 0;
    for (const auto& peer : result.peers) {
        if (peer.completion >= 0.0) {
            ++completed;
            EXPECT_GE(peer.completion, peer.arrival);
        }
        EXPECT_GT(peer.capacity, 0.0);
    }
    EXPECT_EQ(completed, result.completions);
    EXPECT_EQ(result.completion_times.size(), result.completions);
    EXPECT_TRUE(std::is_sorted(result.completion_times.begin(),
                               result.completion_times.end()));
}

TEST(SwarmSim, SeedlessSwarmDiesAtK1) {
    // Figure 4: K=1 swarms lose the content almost immediately after the
    // publisher departs.
    auto config = base_config();
    config.peer_arrival_rate = 1.0 / 150.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(33.0 * kKBps);
    config.publisher_capacity = 50.0 * kKBps;
    config.publisher = PublisherBehavior::kLeaveAfterFirstCompletion;
    config.horizon = 1500.0;
    std::size_t total_completions = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        config.seed = seed;
        total_completions += run_swarm_sim(config).completions;
    }
    EXPECT_LE(total_completions, 15u);  // ~1-2 per run
}

TEST(SwarmSim, SeedlessSwarmSelfSustainsAtK8) {
    // Figure 4: K >= 6 keeps serving peers linearly without any publisher.
    auto config = base_config();
    config.bundle_size = 8;
    config.peer_arrival_rate = 1.0 / 150.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(33.0 * kKBps);
    config.publisher_capacity = 50.0 * kKBps;
    config.publisher = PublisherBehavior::kLeaveAfterFirstCompletion;
    config.horizon = 1500.0;
    config.seed = 3;
    const auto result = run_swarm_sim(config);
    EXPECT_GT(result.completions, 10u);
    EXPECT_GT(result.last_completion, 1200.0);
}

TEST(SwarmSim, OnOffPublisherBlocksSmallBundles) {
    // Figure 5: K=2 with an intermittent publisher produces blocked peers
    // whose downloads far exceed the 160 s service time.
    auto config = base_config();
    config.bundle_size = 2;
    config.publisher = PublisherBehavior::kOnOff;
    config.publisher_on_mean = 300.0;
    config.publisher_off_mean = 900.0;
    config.horizon = 6000.0;
    config.drain_after_horizon = true;
    const auto result = run_swarm_sim(config);
    EXPECT_GT(result.download_times.max(), 500.0);
}

TEST(SwarmSim, LingeringSeedsKeepContentAlive) {
    auto config = base_config();
    config.publisher = PublisherBehavior::kLeaveAfterFirstCompletion;
    config.peer_arrival_rate = 1.0 / 100.0;
    config.horizon = 4000.0;
    auto lingering = config;
    lingering.peers_linger = true;
    lingering.linger_mean = 600.0;
    const auto without = run_swarm_sim(config);
    const auto with = run_swarm_sim(lingering);
    EXPECT_GT(with.completions, without.completions);
    EXPECT_GT(with.available_fraction, without.available_fraction);
}

TEST(SwarmSim, DeterministicForFixedSeed) {
    const auto config = base_config();
    const auto a = run_swarm_sim(config);
    const auto b = run_swarm_sim(config);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.completion_times, b.completion_times);
}

TEST(SwarmSim, ReplicationsUseDistinctSeeds) {
    const auto runs = run_swarm_replications(base_config(), 3);
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_FALSE(runs[0].completion_times == runs[1].completion_times &&
                 runs[1].completion_times == runs[2].completion_times);
}

TEST(SwarmSim, TelemetryAttachmentIsObserverNeutral) {
    // Replication results with a live telemetry session must be
    // bit-identical to the detached run at every thread count.
    auto config = base_config();
    config.publisher = PublisherBehavior::kOnOff;
    const auto detached =
        run_swarm_replications(config, 4, sim::ParallelPolicy{1});

    for (std::size_t threads : {1u, 2u, 4u}) {
        telemetry::TelemetrySession session{telemetry::TelemetryConfig{60.0, {}}};
        config.telemetry = &session;
        const auto observed =
            run_swarm_replications(config, 4, sim::ParallelPolicy{threads});
        config.telemetry = nullptr;

        ASSERT_EQ(observed.size(), detached.size());
        for (std::size_t i = 0; i < observed.size(); ++i) {
            EXPECT_EQ(observed[i].arrivals, detached[i].arrivals);
            EXPECT_EQ(observed[i].completions, detached[i].completions);
            EXPECT_EQ(observed[i].completion_times, detached[i].completion_times);
            EXPECT_EQ(observed[i].download_times.mean(),
                      detached[i].download_times.mean());
        }
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
        // The counters observed all four replications (trace-off preset:
        // the engine call sites compile out and the counters stay zero).
        EXPECT_EQ(session.counters().replications_total.load(), 4u);
        EXPECT_EQ(session.counters().replications_completed.load(), 4u);
        EXPECT_GT(session.counters().events_dispatched.load(), 0u);
        EXPECT_DOUBLE_EQ(session.counters().sim_time_advanced.load(),
                         4.0 * config.horizon);
#endif
    }
}

TEST(SwarmSim, AvailabilityIntervalsWellFormed) {
    auto config = base_config();
    config.publisher = PublisherBehavior::kOnOff;
    config.horizon = 8000.0;
    const auto result = run_swarm_sim(config);
    double previous_end = 0.0;
    for (const auto& interval : result.available_intervals) {
        EXPECT_LT(interval.begin, interval.end);
        EXPECT_GE(interval.begin, previous_end);
        previous_end = interval.end;
    }
    EXPECT_GE(result.available_fraction, 0.0);
    EXPECT_LE(result.available_fraction, 1.0);
}

TEST(SwarmSim, DrainServesBlockedPeers) {
    auto config = base_config();
    config.bundle_size = 2;
    config.publisher = PublisherBehavior::kOnOff;
    config.horizon = 2400.0;
    config.drain_after_horizon = true;
    config.drain_deadline_factor = 20.0;
    const auto result = run_swarm_sim(config);
    // With generous drain time, essentially everyone eventually completes.
    EXPECT_LE(result.stuck_at_horizon, result.arrivals / 10);
}

TEST(SwarmSim, ZeroJitterIsAccepted) {
    auto config = base_config();
    config.transfer_jitter = 0.0;
    EXPECT_NO_THROW((void)run_swarm_sim(config));
}

TEST(SwarmSim, RejectsInvalidConfig) {
    auto config = base_config();
    config.bundle_size = 0;
    EXPECT_THROW((void)run_swarm_sim(config), std::invalid_argument);
    config = base_config();
    config.peer_capacity = nullptr;
    EXPECT_THROW((void)run_swarm_sim(config), std::invalid_argument);
    config = base_config();
    config.transfer_jitter = 1.0;
    EXPECT_THROW((void)run_swarm_sim(config), std::invalid_argument);
    config = base_config();
    config.pieces_per_file = 0;
    EXPECT_THROW((void)run_swarm_sim(config), std::invalid_argument);
    EXPECT_THROW((void)run_swarm_replications(base_config(), 0), std::invalid_argument);
}

TEST(SwarmSim, TraceDrivenArrivalsFollowTrace) {
    auto config = base_config();
    config.arrival_trace = {10.0, 20.0, 30.0, 500.0};
    config.horizon = 1000.0;
    const auto result = run_swarm_sim(config);
    EXPECT_EQ(result.arrivals, 4u);
    ASSERT_EQ(result.peers.size(), 4u);
    EXPECT_DOUBLE_EQ(result.peers[0].arrival, 10.0);
    EXPECT_DOUBLE_EQ(result.peers[3].arrival, 500.0);
}

TEST(SwarmSim, TraceArrivalsBeyondHorizonDropped) {
    auto config = base_config();
    config.arrival_trace = {10.0, 5000.0};
    config.horizon = 1000.0;
    const auto result = run_swarm_sim(config);
    EXPECT_EQ(result.arrivals, 1u);
}

TEST(SwarmSim, EmptyTraceMeansNoArrivalsWouldUsePoisson) {
    // An empty trace falls back to the Poisson process.
    auto config = base_config();
    config.arrival_trace.clear();
    const auto result = run_swarm_sim(config);
    EXPECT_GT(result.arrivals, 0u);
}

TEST(SwarmSim, SuperSeedingSpreadsCopiesFaster) {
    // With super-seeding the publisher's single copy reaches more peers
    // before it departs: the seedless swarm survives longer at the
    // boundary bundle size.
    auto config = base_config();
    config.bundle_size = 4;
    config.peer_arrival_rate = 1.0 / 150.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(33.0 * kKBps);
    config.publisher_capacity = 50.0 * kKBps;
    config.publisher = PublisherBehavior::kLeaveAfterFirstCompletion;
    config.horizon = 1500.0;
    std::uint64_t plain = 0;
    std::uint64_t super = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        config.seed = seed;
        config.super_seeding = false;
        plain += run_swarm_sim(config).completions;
        config.super_seeding = true;
        super += run_swarm_sim(config).completions;
    }
    EXPECT_GE(super, plain);
}

TEST(SwarmSim, SuperSeedingStillServesLonePeer) {
    // A single peer with no other holders must still be served by a
    // super-seeding publisher (every piece has zero holders initially).
    auto config = base_config();
    config.super_seeding = true;
    config.arrival_trace = {1.0};
    config.horizon = 2000.0;
    config.drain_after_horizon = true;
    const auto result = run_swarm_sim(config);
    EXPECT_EQ(result.completions, 1u);
}

TEST(SwarmSim, LimitedVisibilityStillServesPeers) {
    auto config = base_config();
    config.max_neighbors = 4;
    config.drain_after_horizon = true;
    const auto result = run_swarm_sim(config);
    EXPECT_GT(result.completions, 10u);
    // The always-on publisher is reachable regardless of the view, so
    // everyone eventually completes.
    EXPECT_EQ(result.stuck_at_horizon, 0u);
}

TEST(SwarmSim, LimitedVisibilityDeterministic) {
    auto config = base_config();
    config.max_neighbors = 3;
    const auto a = run_swarm_sim(config);
    const auto b = run_swarm_sim(config);
    EXPECT_EQ(a.completion_times, b.completion_times);
}

TEST(SwarmSim, TinyViewsHurtSeedlessSurvival) {
    // With the publisher gone, a 2-neighbor view fragments the swarm and
    // fewer peers complete than under global visibility.
    auto config = base_config();
    config.bundle_size = 6;
    config.peer_arrival_rate = 1.0 / 150.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(33.0 * kKBps);
    config.publisher_capacity = 50.0 * kKBps;
    config.publisher = PublisherBehavior::kLeaveAfterFirstCompletion;
    config.horizon = 1500.0;
    std::uint64_t global_served = 0;
    std::uint64_t narrow_served = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        config.seed = seed;
        config.max_neighbors = 0;
        global_served += run_swarm_sim(config).completions;
        config.max_neighbors = 2;
        narrow_served += run_swarm_sim(config).completions;
    }
    EXPECT_GE(global_served, narrow_served);
}

TEST(SwarmSim, PexGrowsViewsBeyondTrackerHandout) {
    // With a moderate view and PEX expansion, limited visibility performs
    // close to global visibility on an always-available swarm.
    auto config = base_config();
    config.drain_after_horizon = true;
    config.max_neighbors = 0;
    const auto global = run_swarm_sim(config);
    config.max_neighbors = 8;
    const auto limited = run_swarm_sim(config);
    ASSERT_GT(limited.completions, 0u);
    EXPECT_NEAR(limited.download_times.mean(), global.download_times.mean(),
                0.5 * global.download_times.mean());
}

TEST(SwarmSim, HeterogeneousCapacitiesRun) {
    auto config = base_config();
    config.peer_capacity = std::make_shared<BitTyrantCapacity>();
    config.publisher = PublisherBehavior::kOnOff;
    config.drain_after_horizon = true;
    const auto result = run_swarm_sim(config);
    EXPECT_GT(result.completions, 0u);
    // Capacities recorded per peer should vary.
    double min_cap = 1e18;
    double max_cap = 0.0;
    for (const auto& peer : result.peers) {
        min_cap = std::min(min_cap, peer.capacity);
        max_cap = std::max(max_cap, peer.capacity);
    }
    EXPECT_GT(max_cap, 2.0 * min_cap);
}

}  // namespace
}  // namespace swarmavail::swarm
