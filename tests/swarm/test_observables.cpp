#include "swarm/observables.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace swarmavail::swarm {
namespace {

TEST(CompletionsOverTime, StepFunction) {
    const std::vector<double> completions{10.0, 20.0, 20.0, 50.0};
    const std::vector<double> grid{0.0, 10.0, 25.0, 60.0};
    const auto counts = completions_over_time(completions, grid);
    EXPECT_EQ(counts, (std::vector<std::size_t>{0, 1, 3, 4}));
}

TEST(CompletionsOverTime, EmptyCompletions) {
    const auto counts = completions_over_time({}, {0.0, 5.0});
    EXPECT_EQ(counts, (std::vector<std::size_t>{0, 0}));
}

TEST(CompletionsOverTime, RejectsUnsortedInput) {
    EXPECT_THROW((void)completions_over_time({5.0, 1.0}, {0.0}), std::invalid_argument);
}

TEST(TimeGrid, EvenSpacing) {
    const auto grid = time_grid(100.0, 5);
    ASSERT_EQ(grid.size(), 5u);
    EXPECT_DOUBLE_EQ(grid.front(), 0.0);
    EXPECT_DOUBLE_EQ(grid.back(), 100.0);
    EXPECT_DOUBLE_EQ(grid[1], 25.0);
}

TEST(TimeGrid, RejectsInvalidArguments) {
    EXPECT_THROW((void)time_grid(0.0, 5), std::invalid_argument);
    EXPECT_THROW((void)time_grid(10.0, 1), std::invalid_argument);
}

TEST(MaxCompletionBurst, FindsDensestWindow) {
    const std::vector<double> completions{0.0, 1.0, 2.0, 100.0, 101.0, 102.0, 103.0};
    EXPECT_EQ(max_completion_burst(completions, 5.0), 4u);
    EXPECT_EQ(max_completion_burst(completions, 0.5), 1u);
}

TEST(MaxCompletionBurst, EmptyInputIsZero) {
    EXPECT_EQ(max_completion_burst({}, 10.0), 0u);
}

TEST(MaxCompletionBurst, WholeRangeWindow) {
    const std::vector<double> completions{1.0, 2.0, 3.0};
    EXPECT_EQ(max_completion_burst(completions, 100.0), 3u);
}

TEST(RenderPeerTimeline, OneRowPerPeer) {
    std::vector<PeerRecord> peers;
    peers.push_back({0.0, 50.0, 1.0});
    peers.push_back({25.0, -1.0, 1.0});
    const std::string text = render_peer_timeline(peers, 100.0, 20);
    // Two newline-terminated rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
    EXPECT_NE(text.find('|'), std::string::npos);  // completed peer marker
    EXPECT_NE(text.find('?'), std::string::npos);  // incomplete peer marker
}

TEST(RenderPeerTimeline, MarksSpanDashes) {
    std::vector<PeerRecord> peers;
    peers.push_back({0.0, 99.0, 1.0});
    const std::string text = render_peer_timeline(peers, 100.0, 10);
    EXPECT_GE(std::count(text.begin(), text.end(), '-'), 8);
}

TEST(RenderPeerTimeline, RejectsTinyWidth) {
    EXPECT_THROW((void)render_peer_timeline({}, 100.0, 5), std::invalid_argument);
}

TEST(MergeDownloadTimes, OnlyCompletedPeersCounted) {
    SwarmSimResult run_a;
    run_a.peers.push_back({0.0, 10.0, 1.0});
    run_a.peers.push_back({5.0, -1.0, 1.0});
    SwarmSimResult run_b;
    run_b.peers.push_back({2.0, 32.0, 1.0});
    const auto merged = merge_download_times({run_a, run_b});
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_DOUBLE_EQ(merged.mean(), 20.0);
}

TEST(MergeDownloadTimes, EmptyRunsYieldEmptySet) {
    const auto merged = merge_download_times({});
    EXPECT_TRUE(merged.empty());
}

}  // namespace
}  // namespace swarmavail::swarm
