// Invariant-audit layer of the block-level swarm simulator: negative tests
// hand the audit checks deliberately corrupted piece/slot/capacity state and
// assert detection; positive tests run the full simulator with debug_audit
// across the paper's experiment shapes and verify healthy runs stay clean
// and unperturbed.
#include "swarm/audit.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "swarm/piece_set.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/check.hpp"

namespace swarmavail::swarm {
namespace {

SwarmSimConfig base_config() {
    SwarmSimConfig config;
    config.bundle_size = 2;
    config.file_size = 1.0e6 * 8.0;
    config.pieces_per_file = 4;
    config.peer_arrival_rate = 1.0 / 40.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(50.0 * kKBps);
    config.publisher_capacity = 100.0 * kKBps;
    config.publisher = PublisherBehavior::kOnOff;
    config.horizon = 1500.0;
    config.seed = 7;
    config.debug_audit = true;
    return config;
}

// ---- negative tests: corrupted state must be caught --------------------

TEST(SwarmAudit, DetectsPieceCountMismatch) {
    // A bitmap holding 3 pieces while the cached counter says 5 is the
    // piece-accounting drift the audit exists to catch.
    EXPECT_THROW(audit::check_piece_accounting(3, 5), CheckFailure);
    EXPECT_THROW(audit::check_piece_accounting(5, 3), CheckFailure);
    EXPECT_NO_THROW(audit::check_piece_accounting(4, 4));
}

TEST(SwarmAudit, DetectsCapacityOvercommit) {
    // 120 Kbit/s handed out from a 100 Kbit/s link.
    EXPECT_THROW(audit::check_capacity_budget(120.0e3, 100.0e3), CheckFailure);
    EXPECT_NO_THROW(audit::check_capacity_budget(100.0e3, 100.0e3));
    EXPECT_NO_THROW(audit::check_capacity_budget(99.9e3, 100.0e3));
    // Float accumulation slack is tolerated; a whole extra slot is not.
    EXPECT_NO_THROW(audit::check_capacity_budget(100.0e3 * (1.0 + 1.0e-12), 100.0e3));
}

TEST(SwarmAudit, DetectsSlotOvercommit) {
    EXPECT_THROW(audit::check_slot_budget("peer upload slots", 5, 4), CheckFailure);
    EXPECT_NO_THROW(audit::check_slot_budget("peer upload slots", 4, 4));
    EXPECT_NO_THROW(audit::check_slot_budget("peer upload slots", 0, 4));
}

TEST(SwarmAudit, DetectsHolderCounterDrift) {
    // The per-piece holder counter says 4 holders but only 3 online bitmaps
    // contain the piece (a stale entry after a departure).
    EXPECT_THROW(audit::check_holder_consistency(2, 4, 3), CheckFailure);
    EXPECT_NO_THROW(audit::check_holder_consistency(2, 3, 3));
}

TEST(SwarmAudit, PieceSetOverloadAuditsHealthyBitmaps) {
    PieceSet set{8};
    EXPECT_NO_THROW(audit::check_piece_accounting(set));
    set.add(0);
    set.add(5);
    EXPECT_NO_THROW(audit::check_piece_accounting(set));
    EXPECT_EQ(set.recount(), set.count());
    const PieceSet seed = PieceSet::complete(8);
    EXPECT_EQ(seed.recount(), 8u);
    EXPECT_NO_THROW(audit::check_piece_accounting(seed));
}

TEST(SwarmAudit, FailureCarriesFileLineAndMessage) {
    try {
        audit::check_capacity_budget(2.0e5, 1.0e5);
        FAIL() << "capacity overcommit was not detected";
    } catch (const CheckFailure& e) {
        EXPECT_NE(std::string(e.file()).find("audit.cpp"), std::string::npos);
        EXPECT_GT(e.line(), 0);
        EXPECT_NE(e.message().find("capacity overcommitted"), std::string::npos);
    }
}

// ---- positive tests: healthy runs pass under audit ---------------------

TEST(SwarmAudit, OnOffPublisherRunStaysCleanUnderAudit) {
    const auto result = run_swarm_sim(base_config());
    EXPECT_GT(result.arrivals, 10u);
}

TEST(SwarmAudit, LingeringSeedsRunStaysCleanUnderAudit) {
    auto config = base_config();
    config.peers_linger = true;
    config.linger_mean = 200.0;
    config.drain_after_horizon = true;
    const auto result = run_swarm_sim(config);
    EXPECT_GT(result.completions, 0u);
}

TEST(SwarmAudit, SuperSeedingAndReciprocityRunStaysCleanUnderAudit) {
    auto config = base_config();
    config.super_seeding = true;
    config.reciprocity_cap = true;
    config.peer_capacity = std::make_shared<BitTyrantCapacity>();
    const auto result = run_swarm_sim(config);
    EXPECT_GT(result.arrivals, 10u);
}

TEST(SwarmAudit, LimitedVisibilityRunStaysCleanUnderAudit) {
    auto config = base_config();
    config.max_neighbors = 3;
    config.publisher = PublisherBehavior::kLeaveAfterFirstCompletion;
    const auto result = run_swarm_sim(config);
    EXPECT_GT(result.arrivals, 10u);
}

TEST(SwarmAudit, AuditModeDoesNotPerturbResults) {
    auto config = base_config();
    config.debug_audit = false;
    const auto plain = run_swarm_sim(config);
    config.debug_audit = true;
    const auto audited = run_swarm_sim(config);
    EXPECT_EQ(plain.arrivals, audited.arrivals);
    EXPECT_EQ(plain.completions, audited.completions);
    EXPECT_DOUBLE_EQ(plain.available_fraction, audited.available_fraction);
    EXPECT_EQ(plain.completion_times, audited.completion_times);
}

}  // namespace
}  // namespace swarmavail::swarm
