// Parameterized invariant sweep over the swarm simulator's configuration
// space: every combination must run cleanly and satisfy conservation and
// well-formedness invariants, whatever the feature flags.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "swarm/swarm_sim.hpp"

namespace swarmavail::swarm {
namespace {

struct InvariantCase {
    std::size_t bundle_size;
    PublisherBehavior publisher;
    bool super_seeding;
    bool reciprocity_cap;
    std::size_t max_neighbors;
    double jitter;
    bool linger;
    bool hetero_capacity;
};

class SwarmInvariants : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(SwarmInvariants, ConservationAndWellFormedness) {
    const auto p = GetParam();
    SwarmSimConfig config;
    config.bundle_size = p.bundle_size;
    config.peer_arrival_rate = 1.0 / 60.0;
    if (p.hetero_capacity) {
        config.peer_capacity = std::make_shared<BitTyrantCapacity>();
    } else {
        config.peer_capacity = std::make_shared<HomogeneousCapacity>(50.0 * kKBps);
    }
    config.publisher_capacity = 100.0 * kKBps;
    config.publisher = p.publisher;
    config.super_seeding = p.super_seeding;
    config.reciprocity_cap = p.reciprocity_cap;
    config.max_neighbors = p.max_neighbors;
    config.transfer_jitter = p.jitter;
    config.peers_linger = p.linger;
    config.linger_mean = p.linger ? 120.0 : 0.0;
    config.horizon = 2400.0;
    config.drain_after_horizon = true;
    config.drain_deadline_factor = 4.0;
    config.seed = 99;

    const auto result = run_swarm_sim(config);

    // Conservation: every arrival is accounted for.
    EXPECT_EQ(result.peers.size(), result.arrivals);
    std::size_t completed = 0;
    for (const auto& peer : result.peers) {
        if (peer.completion >= 0.0) {
            ++completed;
            EXPECT_GE(peer.completion, peer.arrival);
        }
        EXPECT_GT(peer.capacity, 0.0);
    }
    EXPECT_EQ(completed, result.completions);
    EXPECT_GE(result.arrivals, result.completions);

    // Completion records well-formed and sorted.
    EXPECT_EQ(result.completion_times.size(), result.completions);
    EXPECT_TRUE(std::is_sorted(result.completion_times.begin(),
                               result.completion_times.end()));
    EXPECT_EQ(result.download_times.count(), result.completions);

    // Availability intervals disjoint, ordered, within the run.
    double previous_end = 0.0;
    for (const auto& interval : result.available_intervals) {
        EXPECT_LT(interval.begin, interval.end);
        EXPECT_GE(interval.begin, previous_end);
        previous_end = interval.end;
    }
    EXPECT_GE(result.available_fraction, 0.0);
    EXPECT_LE(result.available_fraction, 1.0);

    // Something must actually happen in every configuration.
    EXPECT_GT(result.arrivals, 10u);
    EXPECT_GT(result.completions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, SwarmInvariants,
    ::testing::Values(
        InvariantCase{1, PublisherBehavior::kAlwaysOn, false, false, 0, 0.15, false,
                      false},
        InvariantCase{3, PublisherBehavior::kOnOff, false, false, 0, 0.15, false,
                      false},
        InvariantCase{2, PublisherBehavior::kOnOff, true, false, 0, 0.15, false,
                      false},
        InvariantCase{2, PublisherBehavior::kOnOff, false, true, 0, 0.15, false, true},
        InvariantCase{2, PublisherBehavior::kOnOff, false, false, 5, 0.15, false,
                      false},
        InvariantCase{4, PublisherBehavior::kLeaveAfterFirstCompletion, false, false,
                      0, 0.15, true, false},
        InvariantCase{2, PublisherBehavior::kOnOff, true, true, 4, 0.0, true, true},
        InvariantCase{1, PublisherBehavior::kAlwaysOn, false, false, 2, 0.3, false,
                      true},
        InvariantCase{6, PublisherBehavior::kLeaveAfterFirstCompletion, true, false,
                      8, 0.15, false, false}));

}  // namespace
}  // namespace swarmavail::swarm
