#include "swarm/piece_set.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace swarmavail::swarm {
namespace {

TEST(PieceSet, StartsEmpty) {
    const PieceSet set{8};
    EXPECT_EQ(set.size(), 8u);
    EXPECT_EQ(set.count(), 0u);
    EXPECT_TRUE(set.empty());
    EXPECT_FALSE(set.is_complete());
    EXPECT_DOUBLE_EQ(set.fraction(), 0.0);
}

TEST(PieceSet, AddAndQuery) {
    PieceSet set{4};
    set.add(1);
    set.add(3);
    EXPECT_TRUE(set.has(1));
    EXPECT_TRUE(set.has(3));
    EXPECT_FALSE(set.has(0));
    EXPECT_EQ(set.count(), 2u);
    EXPECT_DOUBLE_EQ(set.fraction(), 0.5);
}

TEST(PieceSet, DoubleAddIsIdempotent) {
    PieceSet set{4};
    set.add(2);
    set.add(2);
    EXPECT_EQ(set.count(), 1u);
}

TEST(PieceSet, CompletionDetection) {
    PieceSet set{3};
    set.add(0);
    set.add(1);
    EXPECT_FALSE(set.is_complete());
    set.add(2);
    EXPECT_TRUE(set.is_complete());
    EXPECT_DOUBLE_EQ(set.fraction(), 1.0);
}

TEST(PieceSet, CompleteFactory) {
    const auto set = PieceSet::complete(5);
    EXPECT_TRUE(set.is_complete());
    EXPECT_EQ(set.count(), 5u);
    for (std::size_t p = 0; p < 5; ++p) {
        EXPECT_TRUE(set.has(p));
    }
}

TEST(PieceSet, BoundsChecking) {
    PieceSet set{2};
    EXPECT_THROW((void)set.has(2), std::invalid_argument);
    EXPECT_THROW(set.add(5), std::invalid_argument);
    EXPECT_THROW((PieceSet{0}), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::swarm
