// Observability acceptance pins: a traced swarm run serialized through the
// JSONL sink must reproduce the publisher up/down intervals, availability
// intervals, and per-peer download times of the aggregate result exactly
// (bit-for-bit doubles), and attaching metrics/tracing must not perturb the
// simulation itself.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "sim/availability_sim.hpp"
#include "sim/trace.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace swarmavail::swarm {
namespace {

using sim::ParsedTrace;
using sim::TraceKind;
using sim::TraceRecord;

SwarmSimConfig traced_config() {
    SwarmSimConfig config;
    config.bundle_size = 2;
    config.pieces_per_file = 4;
    config.peer_arrival_rate = 1.0 / 30.0;
    config.peer_capacity = std::make_shared<HomogeneousCapacity>(100.0 * kKBps);
    config.publisher_capacity = 200.0 * kKBps;
    config.publisher = PublisherBehavior::kOnOff;
    config.publisher_on_mean = 120.0;
    config.publisher_off_mean = 120.0;
    config.horizon = 1200.0;
    config.seed = 7;
    return config;
}

TEST(SwarmTrace, MetricsAndTracingDoNotPerturbTheSimulation) {
    const SwarmSimConfig plain = traced_config();
    const SwarmSimResult baseline = run_swarm_sim(plain);

    SwarmSimConfig observed = traced_config();
    MetricsRegistry metrics;
    std::ostringstream os;
    sim::JsonlTraceSink sink{os};
    sim::Tracer tracer{sink};
    tracer.set_enabled(true);
    observed.metrics = &metrics;
    observed.tracer = &tracer;
    const SwarmSimResult result = run_swarm_sim(observed);

    // Observability reads state and never draws randomness, so the run is
    // bit-identical with or without it.
    EXPECT_EQ(result.arrivals, baseline.arrivals);
    EXPECT_EQ(result.completions, baseline.completions);
    EXPECT_EQ(result.completion_times, baseline.completion_times);
    EXPECT_EQ(result.download_times.mean(), baseline.download_times.mean());
    EXPECT_EQ(result.available_fraction, baseline.available_fraction);
}

TEST(SwarmTrace, JsonlRoundTripReproducesAggregateObservablesExactly) {
    SwarmSimConfig config = traced_config();
    MetricsRegistry metrics;
    std::ostringstream os;
    sim::JsonlTraceSink sink{os};
    sim::Tracer tracer{sink};
    tracer.set_enabled(true);
    config.metrics = &metrics;
    config.tracer = &tracer;
    // run_swarm_sim flushes the tracer before returning, so the stream is
    // complete here even though the tracer is still alive.
    const SwarmSimResult result = run_swarm_sim(config);
    std::istringstream in{os.str()};
    const ParsedTrace trace = sim::read_trace_jsonl(in);
#if defined(SWARMAVAIL_TRACING_DISABLED)
    // Call sites are compiled out: the trace is empty and only the metrics
    // pins below apply.
    EXPECT_TRUE(trace.records.empty());
#else
    ASSERT_FALSE(trace.records.empty());
    ASSERT_GT(result.completions, 0u);

    // --- per-peer download times: the traced values, re-accumulated in
    // emission order, must reproduce the result's Welford stream bit for
    // bit (same doubles, same order, same algorithm).
    StreamingStats traced_downloads;
    for (const TraceRecord& r : trace.records) {
        if (r.kind == TraceKind::kPeerCompletion) {
            traced_downloads.add(r.a);
        }
    }
    EXPECT_EQ(traced_downloads.count(), result.download_times.count());
    EXPECT_EQ(traced_downloads.mean(), result.download_times.mean());
    EXPECT_EQ(traced_downloads.variance(), result.download_times.variance());
    EXPECT_EQ(traced_downloads.min(), result.download_times.min());
    EXPECT_EQ(traced_downloads.max(), result.download_times.max());

    // --- availability intervals reconstruct exactly from the
    // kAvailabilityEnd records alone (`a` carries the begin time).
    std::vector<AvailabilityInterval> traced_intervals;
    for (const TraceRecord& r : trace.records) {
        if (r.kind == TraceKind::kAvailabilityEnd) {
            traced_intervals.push_back({r.a, r.time});
        }
    }
    ASSERT_EQ(traced_intervals.size(), result.available_intervals.size());
    for (std::size_t i = 0; i < traced_intervals.size(); ++i) {
        EXPECT_EQ(traced_intervals[i].begin, result.available_intervals[i].begin);
        EXPECT_EQ(traced_intervals[i].end, result.available_intervals[i].end);
    }

    // --- publisher up/down intervals: alternating kPublisherUp/Down
    // records; re-deriving the interval lengths from the traced times must
    // agree with the metrics histograms bit for bit (the engine computed
    // the same subtractions from the same event times).
    StreamingStats traced_up;
    StreamingStats traced_down;
    double last_toggle = 0.0;
    bool online = false;
    bool ever_toggled = false;
    std::uint64_t up_toggles = 0;
    std::uint64_t down_toggles = 0;
    for (const TraceRecord& r : trace.records) {
        if (r.kind == TraceKind::kPublisherUp) {
            EXPECT_FALSE(online) << "publisher toggles must alternate";
            if (ever_toggled) {
                traced_down.add(r.time - last_toggle);
            }
            online = true;
            ever_toggled = true;
            last_toggle = r.time;
            ++up_toggles;
        } else if (r.kind == TraceKind::kPublisherDown) {
            EXPECT_TRUE(online) << "publisher toggles must alternate";
            traced_up.add(r.time - last_toggle);
            online = false;
            last_toggle = r.time;
            ++down_toggles;
        }
    }
    ASSERT_GT(up_toggles, 1u);  // the on/off process must have cycled
    EXPECT_EQ(metrics.find_counter("swarm.publisher_up")->value(), up_toggles);
    EXPECT_EQ(metrics.find_counter("swarm.publisher_down")->value(), down_toggles);
    const HistogramMetric* up_hist = metrics.find_histogram("swarm.publisher_up_interval_s");
    const HistogramMetric* down_hist =
        metrics.find_histogram("swarm.publisher_down_interval_s");
    ASSERT_NE(up_hist, nullptr);
    ASSERT_NE(down_hist, nullptr);
    EXPECT_EQ(up_hist->stats().count(), traced_up.count());
    EXPECT_EQ(up_hist->stats().mean(), traced_up.mean());
    EXPECT_EQ(up_hist->stats().min(), traced_up.min());
    EXPECT_EQ(up_hist->stats().max(), traced_up.max());
    EXPECT_EQ(down_hist->stats().count(), traced_down.count());
    EXPECT_EQ(down_hist->stats().mean(), traced_down.mean());

    // --- transfer lifecycle counters agree with the traced event stream.
    std::uint64_t starts = 0;
    std::uint64_t completes = 0;
    for (const TraceRecord& r : trace.records) {
        starts += r.kind == TraceKind::kTransferStart ? 1u : 0u;
        completes += r.kind == TraceKind::kTransferComplete ? 1u : 0u;
    }
    EXPECT_EQ(metrics.find_counter("swarm.transfers_started")->value(), starts);
    EXPECT_EQ(metrics.find_counter("swarm.transfers_completed")->value(), completes);
#endif

    // --- metrics pins that hold in every build: the registry mirrors the
    // aggregate result exactly.
    EXPECT_EQ(metrics.find_counter("swarm.arrivals")->value(), result.arrivals);
    EXPECT_EQ(metrics.find_counter("swarm.completions")->value(), result.completions);
    const HistogramMetric* downloads = metrics.find_histogram("swarm.download_time_s");
    ASSERT_NE(downloads, nullptr);
    EXPECT_EQ(downloads->stats().count(), result.download_times.count());
    EXPECT_EQ(downloads->stats().mean(), result.download_times.mean());
    EXPECT_EQ(downloads->stats().variance(), result.download_times.variance());
}

TEST(AvailabilitySimTrace, MetricsMirrorAggregateCountsExactly) {
    sim::AvailabilitySimConfig config;
    config.params.peer_arrival_rate = 1.0 / 60.0;
    config.params.content_size = 80.0;
    config.params.download_rate = 1.0;
    config.params.publisher_arrival_rate = 1.0 / 900.0;
    config.params.publisher_residence = 300.0;
    config.horizon = 50000.0;
    config.seed = 11;

    const auto baseline = sim::run_availability_sim(config);

    MetricsRegistry metrics;
    sim::MemoryTraceSink sink;
    sim::Tracer tracer{sink};
    tracer.set_enabled(true);
    config.metrics = &metrics;
    config.tracer = &tracer;
    const auto result = sim::run_availability_sim(config);

    // Unperturbed by observability.
    EXPECT_EQ(result.arrivals, baseline.arrivals);
    EXPECT_EQ(result.served, baseline.served);
    EXPECT_EQ(result.download_times.mean(), baseline.download_times.mean());
    EXPECT_EQ(result.busy_periods.mean(), baseline.busy_periods.mean());
    EXPECT_EQ(result.unavailable_time_fraction, baseline.unavailable_time_fraction);

    // Metrics mirror the result exactly.
    EXPECT_EQ(metrics.find_counter("avail.arrivals")->value(), result.arrivals);
    EXPECT_EQ(metrics.find_counter("avail.served")->value(), result.served);
    EXPECT_EQ(metrics.find_counter("avail.lost")->value(), result.lost);
    EXPECT_EQ(metrics.find_counter("avail.stranded")->value(), result.stranded);
    const HistogramMetric* busy = metrics.find_histogram("avail.busy_period_s");
    ASSERT_NE(busy, nullptr);
    EXPECT_EQ(busy->stats().count(), result.busy_periods.count());
    EXPECT_EQ(busy->stats().mean(), result.busy_periods.mean());
    const HistogramMetric* downloads = metrics.find_histogram("avail.download_time_s");
    ASSERT_NE(downloads, nullptr);
    EXPECT_EQ(downloads->stats().count(), result.download_times.count());
    EXPECT_EQ(downloads->stats().mean(), result.download_times.mean());
    EXPECT_EQ(downloads->stats().variance(), result.download_times.variance());

#if !defined(SWARMAVAIL_TRACING_DISABLED)
    // Traced per-peer download times re-accumulate to the same stream.
    StreamingStats traced;
    std::uint64_t busy_ends = 0;
    for (const TraceRecord& r : sink.records()) {
        if (r.kind == TraceKind::kPeerCompletion) {
            traced.add(r.a);
        }
        busy_ends += r.kind == TraceKind::kAvailabilityEnd ? 1u : 0u;
    }
    EXPECT_EQ(traced.count(), result.download_times.count());
    EXPECT_EQ(traced.mean(), result.download_times.mean());
    EXPECT_EQ(busy_ends, result.busy_periods.count());
#endif
}

}  // namespace
}  // namespace swarmavail::swarm
