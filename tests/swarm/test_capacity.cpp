#include "swarm/capacity.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace swarmavail::swarm {
namespace {

TEST(HomogeneousCapacity, AlwaysSameRate) {
    const HomogeneousCapacity dist{50.0 * kKBps};
    Rng rng{167};
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(dist.sample(rng), 50.0 * kKBps);
    }
    EXPECT_DOUBLE_EQ(dist.mean(), 50.0 * kKBps);
}

TEST(HomogeneousCapacity, RejectsNonPositiveRate) {
    EXPECT_THROW((HomogeneousCapacity{0.0}), std::invalid_argument);
    EXPECT_THROW((HomogeneousCapacity{-1.0}), std::invalid_argument);
}

TEST(BitTyrantCapacity, MedianIs50KBps) {
    const BitTyrantCapacity dist;
    EXPECT_DOUBLE_EQ(dist.median(), 50.0 * kKBps);
}

TEST(BitTyrantCapacity, MeanNear280KBps) {
    // Section 4.3.2 quotes mean ~280 KBps for the replayed distribution.
    const BitTyrantCapacity dist;
    EXPECT_NEAR(dist.mean() / kKBps, 280.0, 40.0);
}

TEST(BitTyrantCapacity, SampleMomentsMatchAnalytic) {
    const BitTyrantCapacity dist;
    Rng rng{173};
    StreamingStats stats;
    std::vector<double> values;
    for (int i = 0; i < 200000; ++i) {
        const double v = dist.sample(rng);
        stats.add(v);
        values.push_back(v);
    }
    EXPECT_NEAR(stats.mean(), dist.mean(), 0.02 * dist.mean());
    std::nth_element(values.begin(), values.begin() + values.size() / 2, values.end());
    EXPECT_DOUBLE_EQ(values[values.size() / 2], dist.median());
}

TEST(BitTyrantCapacity, HeavyTail) {
    // The mixture must be right-skewed: mean far above the median.
    const BitTyrantCapacity dist;
    EXPECT_GT(dist.mean(), 3.0 * dist.median());
}

TEST(BitTyrantCapacity, AllSamplesPositive) {
    const BitTyrantCapacity dist;
    Rng rng{179};
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GT(dist.sample(rng), 0.0);
    }
}

}  // namespace
}  // namespace swarmavail::swarm
