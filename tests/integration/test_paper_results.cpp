// End-to-end regression of the paper's headline results, pinning the
// qualitative claims each figure/table makes (see EXPERIMENTS.md for the
// quantitative comparison).
#include <gtest/gtest.h>

#include <memory>

#include "measurement/analysis.hpp"
#include "measurement/monitor.hpp"
#include "model/bundling.hpp"
#include "model/zipf_demand.hpp"
#include "queueing/busy_period.hpp"
#include "swarm/observables.hpp"
#include "swarm/swarm_sim.hpp"

namespace swarmavail {
namespace {

TEST(PaperSection2, SeedAvailabilityCdfShape) {
    // Figure 1: <35% of swarms always-seeded in the first month; over the
    // whole trace ~80% of swarms are unavailable >= 80% of the time.
    measurement::CatalogConfig catalog_config;
    catalog_config.music_swarms = 1200;
    catalog_config.tv_swarms = 800;
    catalog_config.book_swarms = 500;
    catalog_config.movie_swarms = 500;
    catalog_config.other_swarms = 300;
    const auto catalog = measurement::generate_catalog(catalog_config);
    measurement::MonitorConfig monitor_config;
    monitor_config.duration_hours = 24 * 120;
    const auto traces = measurement::monitor_catalog(catalog, monitor_config);

    const auto first_month = measurement::availability_fractions(traces, 0, 24 * 30);
    std::size_t always_available = 0;
    for (double a : first_month) {
        always_available += a >= 0.999 ? 1 : 0;
    }
    EXPECT_LT(static_cast<double>(always_available) /
                  static_cast<double>(first_month.size()),
              0.40);

    const auto whole_trace = measurement::availability_fractions(traces, 0, 24 * 120);
    std::size_t mostly_unavailable = 0;
    for (double a : whole_trace) {
        mostly_unavailable += a <= 0.20 ? 1 : 0;
    }
    EXPECT_GT(static_cast<double>(mostly_unavailable) /
                  static_cast<double>(whole_trace.size()),
              0.55);
}

TEST(PaperSection23, CollectionsMoreAvailableThanPlainBooks) {
    // Section 2.3.2: 62% of book swarms seedless vs 36% for collections;
    // collections also see more downloads. Check the ordering and rough
    // separation.
    measurement::CatalogConfig catalog_config;
    catalog_config.book_swarms = 6000;
    catalog_config.music_swarms = 0;
    catalog_config.tv_swarms = 0;
    catalog_config.movie_swarms = 0;
    catalog_config.other_swarms = 0;
    catalog_config.book_collection_fraction = 0.05;  // enough collections to compare
    const auto catalog = measurement::generate_catalog(catalog_config);
    measurement::MonitorConfig monitor_config;
    monitor_config.duration_hours = 24 * 60;
    const auto traces = measurement::monitor_catalog(catalog, monitor_config);

    const auto cmp = measurement::compare_availability(
        catalog, traces, measurement::Category::kBooks, true, 24 * 45);
    ASSERT_GT(cmp.bundled_swarms, 50u);
    EXPECT_LT(cmp.bundled_seedless_fraction(), cmp.plain_seedless_fraction());
    EXPECT_GT(cmp.bundled_mean_downloads, cmp.plain_mean_downloads);
}

TEST(PaperFigure3, OptimalBundleSizeBands) {
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 120.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 400.0;
    const auto curves =
        model::figure3_curves(params, {200.0, 400.0, 600.0, 800.0, 1000.0}, 8);
    EXPECT_EQ(curves[0].optimal_k, 1u);
    EXPECT_EQ(curves[1].optimal_k, 1u);
    EXPECT_EQ(curves[2].optimal_k, 3u);
    EXPECT_EQ(curves[3].optimal_k, 3u);
    EXPECT_EQ(curves[4].optimal_k, 3u);
}

TEST(PaperFigure4, SelfSustainabilityBoundary) {
    // B(m=9) with the Section 4.2 parameters: negligible for K <= 2, large
    // for K >= 5 (the paper's seedless swarms stayed alive for K >= 6 over
    // a 1500 s experiment; ours must cross between K=3 and K=5).
    const double service = 4000.0 / 33.0;
    auto bm = [&](int k) {
        return queueing::steady_state_residual_busy_period(
            9, {k / 150.0, k * service});
    };
    EXPECT_LT(bm(2), 1.0);
    EXPECT_GT(bm(5), 1500.0);
}

TEST(PaperFigure4, SwarmSimTransition) {
    // Block-level confirmation: K=1 dies after the publisher leaves; K=8
    // keeps completing downloads through the 1500 s window.
    swarm::SwarmSimConfig config;
    config.peer_arrival_rate = 1.0 / 150.0;
    config.peer_capacity = std::make_shared<swarm::HomogeneousCapacity>(33.0 * swarm::kKBps);
    config.publisher_capacity = 50.0 * swarm::kKBps;
    config.publisher = swarm::PublisherBehavior::kLeaveAfterFirstCompletion;
    config.horizon = 1500.0;
    config.seed = 5;

    config.bundle_size = 1;
    std::uint64_t small_completions = 0;
    for (const auto& run : swarm::run_swarm_replications(config, 4)) {
        small_completions += run.completions;
    }
    config.bundle_size = 8;
    std::uint64_t large_completions = 0;
    double last = 0.0;
    for (const auto& run : swarm::run_swarm_replications(config, 4)) {
        large_completions += run.completions;
        last = std::max(last, run.last_completion);
    }
    EXPECT_LE(small_completions, 10u);
    EXPECT_GE(large_completions, 5 * small_completions);
    EXPECT_GT(last, 1200.0);
}

TEST(PaperFigure5, FlashDeparturesShrinkWithK) {
    // Figure 5: K=2 shows flash departures (blocked peers completing
    // together when the publisher returns); K=4 nearly eliminates blocking.
    swarm::SwarmSimConfig config;
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity = std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
    config.publisher_capacity = 100.0 * swarm::kKBps;
    config.publisher = swarm::PublisherBehavior::kOnOff;
    config.publisher_on_mean = 300.0;
    config.publisher_off_mean = 900.0;
    config.horizon = 6000.0;
    config.drain_after_horizon = true;
    config.seed = 23;

    auto burst_fraction = [&](std::size_t k) {
        config.bundle_size = k;
        double worst = 0.0;
        for (const auto& run : swarm::run_swarm_replications(config, 4)) {
            if (run.completion_times.empty()) {
                continue;
            }
            const double burst = static_cast<double>(
                swarm::max_completion_burst(run.completion_times, 30.0));
            worst = std::max(worst,
                             burst / static_cast<double>(run.completion_times.size()));
        }
        return worst;
    };
    EXPECT_GT(burst_fraction(2), burst_fraction(4));
}

TEST(PaperFigure6c, BundleHelpsUnpopularHurtsPopular) {
    // Section 4.3.3 (model side): with lambda_i = 1/(8 i), the bundle's
    // download time lies between file 1's isolated time (bundle is worse)
    // and files 2-4's (bundle is better).
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0;  // overwritten per file
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    model::HeterogeneousDemandConfig config;
    config.lambdas = {1.0 / 8.0, 1.0 / 16.0, 1.0 / 24.0, 1.0 / 32.0};
    config.single_publisher = false;  // patient-peer model (threshold 1)
    const auto rows = model::compare_isolated_vs_bundle(params, config);
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_LT(rows[0].gain, 0.0);  // most popular file loses
    EXPECT_GT(rows[3].gain, 0.0);  // least popular file wins
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_GT(rows[i].gain, rows[i - 1].gain);  // gains grow as demand falls
    }
}

}  // namespace
}  // namespace swarmavail
