// Cross-layer validation: the closed-form model (src/model, built on the
// eq. 9 family) against the flow-level simulator (src/sim), which implements
// the queueing dynamics without the model's approximations.
#include <gtest/gtest.h>

#include <cmath>

#include "model/availability.hpp"
#include "model/download_time.hpp"
#include "model/lingering.hpp"
#include "sim/availability_sim.hpp"

namespace swarmavail {
namespace {

struct GridCase {
    double lambda;
    double service;  // s/mu
    double r;
    double u;
};

model::SwarmParams to_params(const GridCase& grid) {
    model::SwarmParams params;
    params.peer_arrival_rate = grid.lambda;
    params.content_size = grid.service;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = grid.r;
    params.publisher_residence = grid.u;
    return params;
}

class ModelVsSim : public ::testing::TestWithParam<GridCase> {};

TEST_P(ModelVsSim, ImpatientUnavailabilityAgrees) {
    const auto params = to_params(GetParam());
    sim::AvailabilitySimConfig config;
    config.params = params;
    config.patient_peers = false;
    config.horizon = 3.0e6;
    config.seed = 11;
    const auto sim_result = run_availability_sim(config);
    const auto model_result = model::availability_impatient(params);
    const double simulated = static_cast<double>(sim_result.lost) /
                             static_cast<double>(sim_result.arrivals);
    EXPECT_NEAR(simulated, model_result.unavailability,
                0.1 * model_result.unavailability + 0.01)
        << "lambda=" << params.peer_arrival_rate << " u=" << params.publisher_residence;
}

TEST_P(ModelVsSim, PatientDownloadTimeAgrees) {
    const auto params = to_params(GetParam());
    sim::AvailabilitySimConfig config;
    config.params = params;
    config.patient_peers = true;
    config.horizon = 3.0e6;
    config.seed = 13;
    const auto sim_result = run_availability_sim(config);
    const auto model_result = model::download_time_patient(params);
    ASSERT_GT(sim_result.download_times.count(), 500u);
    EXPECT_NEAR(sim_result.download_times.mean(), model_result.download_time,
                0.15 * model_result.download_time)
        << "lambda=" << params.peer_arrival_rate << " u=" << params.publisher_residence;
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, ModelVsSim,
    ::testing::Values(GridCase{1.0 / 60.0, 80.0, 1.0 / 900.0, 300.0},
                      GridCase{1.0 / 120.0, 80.0, 1.0 / 900.0, 400.0},
                      GridCase{1.0 / 60.0, 40.0, 1.0 / 600.0, 200.0},
                      GridCase{1.0 / 30.0, 30.0, 1.0 / 1200.0, 150.0},
                      GridCase{1.0 / 200.0, 120.0, 1.0 / 500.0, 500.0}));

TEST(ModelVsSimLingering, LingeringModelTracksSimulation) {
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 60.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 200.0;
    const double linger = 120.0;

    sim::AvailabilitySimConfig config;
    config.params = params;
    config.patient_peers = false;
    config.linger_time = linger;
    config.horizon = 3.0e6;
    config.seed = 17;
    const auto sim_result = run_availability_sim(config);
    const auto model_result = model::availability_lingering(params, linger);
    const double simulated = static_cast<double>(sim_result.lost) /
                             static_cast<double>(sim_result.arrivals);
    // The model approximates the two-stage (download + linger) residence by
    // an exponential of the same mean; agreement is looser than the pure
    // exponential case but must hold to ~20%.
    EXPECT_NEAR(simulated, model_result.unavailability,
                0.2 * model_result.unavailability + 0.01);
}

TEST(ModelVsSimBundle, BundleUnavailabilityDropAgrees) {
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 120.0;
    params.content_size = 60.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 250.0;

    for (std::size_t k : {1u, 2u, 3u}) {
        const auto bundle = model::make_bundle(params, k, model::PublisherScaling::kConstant);
        sim::AvailabilitySimConfig config;
        config.params = bundle;
        config.patient_peers = false;
        config.horizon = 3.0e6;
        config.seed = 19 + k;
        const auto sim_result = run_availability_sim(config);
        const auto model_result = model::availability_impatient(bundle);
        const double simulated = static_cast<double>(sim_result.lost) /
                                 static_cast<double>(sim_result.arrivals);
        EXPECT_NEAR(simulated, model_result.unavailability,
                    0.15 * model_result.unavailability + 0.01)
            << "k=" << k;
    }
}

TEST(ModelVsSimThreshold, ThresholdUnavailabilityDirectionallyAgrees) {
    // Theorem 3.3's P = exp(-r(u + B(m))) assumes the residual busy period
    // distribution concentrates at its mean; check the sim lands within a
    // factor ~2 and preserves ordering in m.
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 20.0;
    params.content_size = 60.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;

    double previous_sim = 0.0;
    for (std::size_t m : {1u, 3u, 5u}) {
        sim::AvailabilitySimConfig config;
        config.params = params;
        config.patient_peers = true;
        config.coverage_threshold = m;
        config.horizon = 4.0e6;
        config.seed = 29;
        const auto sim_result = run_availability_sim(config);
        EXPECT_GE(sim_result.arrival_unavailability, previous_sim * 0.9) << "m=" << m;
        previous_sim = sim_result.arrival_unavailability;

        const auto model_result = model::download_time_threshold(params, m);
        if (model_result.unavailability > 0.02) {
            EXPECT_NEAR(sim_result.arrival_unavailability, model_result.unavailability,
                        model_result.unavailability)
                << "m=" << m;
        }
    }
}

}  // namespace
}  // namespace swarmavail
