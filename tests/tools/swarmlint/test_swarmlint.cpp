// Fixture-driven tests for swarmlint. Every rule has at least one failing
// and one passing fixture under fixtures/; each fixture file declares its
// virtual repo paths and expected diagnostics via directive comments:
//
//   // swarmlint-fixture-path: src/sim/example.cpp   (starts a virtual file)
//   // swarmlint-expect: rule-name                   (one active finding)
//   // swarmlint-expect-suppressed: rule-name        (one silenced finding)
//
// Directive lines are stripped before linting; everything else is the
// virtual file's content, byte for byte. The suite also lints the repo's
// real src/ tree in-process: it must be clean, and two runs must produce
// byte-identical JSON reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "swarmlint.hpp"

namespace {

namespace fs = std::filesystem;
using swarmlint::LintInput;
using swarmlint::LintResult;

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string console_dump(const LintResult& result) {
    std::ostringstream os;
    swarmlint::write_console(result, os);
    return os.str();
}

struct Fixture {
    std::vector<LintInput> inputs;
    std::multiset<std::string> expect_active;
    std::multiset<std::string> expect_suppressed;
};

/// Extracts `<value>` from a `// <marker> <value>` directive line.
bool directive_value(const std::string& line, std::string_view marker,
                     std::string* value) {
    const std::size_t pos = line.find(marker);
    if (pos == std::string::npos) {
        return false;
    }
    std::size_t begin = pos + marker.size();
    while (begin < line.size() && (line[begin] == ' ' || line[begin] == '\t')) {
        ++begin;
    }
    std::size_t end = line.size();
    while (end > begin &&
           (line[end - 1] == ' ' || line[end - 1] == '\t' || line[end - 1] == '\r')) {
        --end;
    }
    value->assign(line, begin, end - begin);
    return true;
}

Fixture load_fixture(const std::string& name) {
    Fixture fx;
    std::istringstream in(read_file(fs::path{SWARMLINT_FIXTURE_DIR} / name));
    std::string line;
    std::string value;
    while (std::getline(in, line)) {
        if (directive_value(line, "swarmlint-fixture-path:", &value)) {
            fx.inputs.push_back(LintInput{value, ""});
        } else if (directive_value(line, "swarmlint-expect-suppressed:", &value)) {
            fx.expect_suppressed.insert(value);
        } else if (directive_value(line, "swarmlint-expect:", &value)) {
            fx.expect_active.insert(value);
        } else if (!fx.inputs.empty()) {
            fx.inputs.back().content += line;
            fx.inputs.back().content += '\n';
        }
    }
    return fx;
}

void expect_fixture(const std::string& name) {
    const Fixture fx = load_fixture(name);
    ASSERT_FALSE(fx.inputs.empty())
        << name << " has no swarmlint-fixture-path directive";
    const LintResult result = swarmlint::lint_sources(fx.inputs, {});
    std::multiset<std::string> active;
    for (const auto& finding : result.findings) {
        active.insert(finding.rule);
    }
    std::multiset<std::string> suppressed;
    for (const auto& finding : result.suppressed) {
        suppressed.insert(finding.rule);
    }
    EXPECT_EQ(active, fx.expect_active) << console_dump(result);
    EXPECT_EQ(suppressed, fx.expect_suppressed) << console_dump(result);
}

/// The repo's real src/ tree, repo-relative paths, sorted — the same input
/// set `swarmlint src` builds from the command line.
std::vector<LintInput> load_src_tree() {
    const fs::path root{SWARMAVAIL_SOURCE_DIR};
    std::vector<std::string> rel_paths;
    for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
        if (!entry.is_regular_file()) {
            continue;
        }
        const std::string ext = entry.path().extension().string();
        if (ext != ".hpp" && ext != ".cpp") {
            continue;
        }
        rel_paths.push_back(fs::relative(entry.path(), root).generic_string());
    }
    std::sort(rel_paths.begin(), rel_paths.end());
    std::vector<LintInput> inputs;
    inputs.reserve(rel_paths.size());
    for (const std::string& rel : rel_paths) {
        inputs.push_back(LintInput{rel, read_file(root / rel)});
    }
    return inputs;
}

// --- determinism family ----------------------------------------------------

TEST(SwarmlintFixtures, DetRandBad) { expect_fixture("det_rand_bad.cpp"); }
TEST(SwarmlintFixtures, DetRandGood) { expect_fixture("det_rand_good.cpp"); }
TEST(SwarmlintFixtures, DetRandomDeviceBad) {
    expect_fixture("det_random_device_bad.cpp");
}
TEST(SwarmlintFixtures, DetRandomDeviceGood) {
    expect_fixture("det_random_device_good.cpp");
}
TEST(SwarmlintFixtures, DetWallClockBad) { expect_fixture("det_wall_clock_bad.cpp"); }
TEST(SwarmlintFixtures, DetWallClockGood) {
    expect_fixture("det_wall_clock_good.cpp");
}
TEST(SwarmlintFixtures, DetUnorderedIterBad) {
    expect_fixture("det_unordered_iter_bad.cpp");
}
TEST(SwarmlintFixtures, DetUnorderedIterGood) {
    expect_fixture("det_unordered_iter_good.cpp");
}
TEST(SwarmlintFixtures, DetEnvBad) { expect_fixture("det_env_bad.cpp"); }
TEST(SwarmlintFixtures, DetEnvGood) { expect_fixture("det_env_good.cpp"); }
TEST(SwarmlintFixtures, DetStaticStateBad) {
    expect_fixture("det_static_state_bad.cpp");
}
TEST(SwarmlintFixtures, DetStaticStateGood) {
    expect_fixture("det_static_state_good.cpp");
}
TEST(SwarmlintFixtures, ServiceLayerWallClockAllowed) {
    expect_fixture("service_layer_good.cpp");
}
TEST(SwarmlintFixtures, ServiceLayerEntropyStillBanned) {
    expect_fixture("service_layer_rand_bad.cpp");
}

// --- observer-neutrality family --------------------------------------------

TEST(SwarmlintFixtures, ObsNoEngineIncludeBad) {
    expect_fixture("obs_no_engine_include_bad.cpp");
}
TEST(SwarmlintFixtures, ObsNoEngineIncludeGood) {
    expect_fixture("obs_no_engine_include_good.cpp");
}
TEST(SwarmlintFixtures, ObsGuardedTelemetryBad) {
    expect_fixture("obs_guarded_telemetry_bad.cpp");
}
TEST(SwarmlintFixtures, ObsGuardedTelemetryGood) {
    expect_fixture("obs_guarded_telemetry_good.cpp");
}
TEST(SwarmlintFixtures, ObsGuardedFingerprintBad) {
    expect_fixture("obs_guarded_fingerprint_bad.cpp");
}
TEST(SwarmlintFixtures, ObsGuardedFingerprintGood) {
    expect_fixture("obs_guarded_fingerprint_good.cpp");
}
TEST(SwarmlintFixtures, ObsMacroCompileOutBad) {
    expect_fixture("obs_macro_compile_out_bad.cpp");
}
TEST(SwarmlintFixtures, ObsMacroCompileOutGood) {
    expect_fixture("obs_macro_compile_out_good.cpp");
}
TEST(SwarmlintFixtures, SvcGuardedSpanBad) {
    expect_fixture("svc_guarded_span_bad.cpp");
}
TEST(SwarmlintFixtures, SvcGuardedSpanGood) {
    expect_fixture("svc_guarded_span_good.cpp");
}

// --- contract + hygiene families -------------------------------------------

TEST(SwarmlintFixtures, ContractRequireNumericBad) {
    expect_fixture("contract_require_numeric_bad.cpp");
}
TEST(SwarmlintFixtures, ContractRequireNumericGood) {
    expect_fixture("contract_require_numeric_good.cpp");
}
TEST(SwarmlintFixtures, HygienePragmaOnceBad) {
    expect_fixture("hygiene_pragma_once_bad.cpp");
}
TEST(SwarmlintFixtures, HygienePragmaOnceGood) {
    expect_fixture("hygiene_pragma_once_good.cpp");
}
TEST(SwarmlintFixtures, HygieneCheckIncludeBad) {
    expect_fixture("hygiene_check_include_bad.cpp");
}
TEST(SwarmlintFixtures, HygieneCheckIncludeGood) {
    expect_fixture("hygiene_check_include_good.cpp");
}
TEST(SwarmlintFixtures, HygieneSuppressionMalformed) {
    expect_fixture("hygiene_suppression_malformed.cpp");
}
TEST(SwarmlintFixtures, HygieneSuppressionUnknownRule) {
    expect_fixture("hygiene_suppression_unknown.cpp");
}
TEST(SwarmlintFixtures, HygieneSuppressionStale) {
    expect_fixture("hygiene_suppression_stale.cpp");
}
TEST(SwarmlintFixtures, HygieneSuppressionUsedIsSilent) {
    expect_fixture("hygiene_suppression_good.cpp");
}

// --- registry + driver behavior --------------------------------------------

TEST(SwarmlintRegistry, AtLeastTenNamedDocumentedRules) {
    const auto& rules = swarmlint::all_rules();
    EXPECT_GE(rules.size(), 10u);
    std::set<std::string> names;
    for (const auto& rule : rules) {
        EXPECT_FALSE(rule.name.empty());
        EXPECT_FALSE(rule.description.empty()) << rule.name;
        EXPECT_TRUE(names.insert(rule.name).second) << "duplicate rule " << rule.name;
    }
}

TEST(SwarmlintRegistry, ClassifiesLayersByPath) {
    using swarmlint::Layer;
    EXPECT_EQ(swarmlint::classify_path("src/swarm/swarm_sim.cpp"), Layer::kEngine);
    EXPECT_EQ(swarmlint::classify_path("src/util/telemetry.cpp"), Layer::kObserver);
    EXPECT_EQ(swarmlint::classify_path("src/sim/trace.hpp"), Layer::kObserver);
    EXPECT_EQ(swarmlint::classify_path("src/sim/fingerprint.hpp"), Layer::kObserver);
    EXPECT_EQ(swarmlint::classify_path("src/sim/flight_recorder.cpp"),
              Layer::kObserver);
    EXPECT_EQ(swarmlint::classify_path("src/util/random.hpp"), Layer::kRandom);
    EXPECT_EQ(swarmlint::classify_path("src/util/stats.hpp"), Layer::kSupport);
    EXPECT_EQ(swarmlint::classify_path("src/serve/server.cpp"), Layer::kService);
    EXPECT_EQ(swarmlint::classify_path("src/serve/router.hpp"), Layer::kService);
    EXPECT_EQ(swarmlint::classify_path("src/serve/span.hpp"), Layer::kObserver);
    EXPECT_EQ(swarmlint::classify_path("tools/swarmlint/main.cpp"), Layer::kOther);
}

TEST(SwarmlintFindings, AnchorFileAndLine) {
    const std::vector<LintInput> inputs{
        {"src/model/anchored.cpp",
         "namespace swarmavail::model {\n"
         "long stamp() {\n"
         "    return time(nullptr);\n"
         "}\n"
         "}  // namespace swarmavail::model\n"}};
    const LintResult result = swarmlint::lint_sources(inputs, {"det-wall-clock"});
    ASSERT_EQ(result.findings.size(), 1u) << console_dump(result);
    EXPECT_EQ(result.findings[0].path, "src/model/anchored.cpp");
    EXPECT_EQ(result.findings[0].line, 3);
}

TEST(SwarmlintSuppressions, FilteredRunsSkipStaleDetection) {
    // An unused suppression is only stale when every rule had a chance to
    // consume it; under --rule subsets it must not be reported.
    const std::vector<LintInput> inputs{
        {"src/sim/filtered.cpp",
         "// swarmlint-allow(det-env): excluded rule cannot consume this\n"
         "int fixture_filtered();\n"}};
    const LintResult all = swarmlint::lint_sources(inputs, {});
    ASSERT_EQ(all.findings.size(), 1u) << console_dump(all);
    EXPECT_EQ(all.findings[0].rule, "hygiene-suppression");
    const LintResult filtered =
        swarmlint::lint_sources(inputs, {"det-rand", "hygiene-suppression"});
    EXPECT_TRUE(filtered.findings.empty()) << console_dump(filtered);
}

TEST(SwarmlintSuppressions, JustificationLandsInReport) {
    const std::vector<LintInput> inputs{
        {"src/sim/justified.cpp",
         "#include <random>\n"
         "// swarmlint-allow(det-rand): reason text lands in the JSON artifact\n"
         "std::mt19937 fixture_engine;\n"}};
    const LintResult result = swarmlint::lint_sources(inputs, {});
    EXPECT_TRUE(result.findings.empty()) << console_dump(result);
    ASSERT_EQ(result.suppressed.size(), 1u) << console_dump(result);
    EXPECT_EQ(result.suppressed[0].justification,
              "reason text lands in the JSON artifact");
    std::ostringstream os;
    swarmlint::write_json(result, os);
    EXPECT_NE(os.str().find("reason text lands in the JSON artifact"),
              std::string::npos);
}

// --- the repo gate, in-process ---------------------------------------------

TEST(SwarmlintSrcTree, NoActiveFindings) {
    const LintResult result = swarmlint::lint_sources(load_src_tree(), {});
    EXPECT_TRUE(result.findings.empty()) << console_dump(result);
}

TEST(SwarmlintSrcTree, ReportIsByteIdentical) {
    const std::vector<LintInput> inputs = load_src_tree();
    std::ostringstream first;
    std::ostringstream second;
    swarmlint::write_json(swarmlint::lint_sources(inputs, {}), first);
    swarmlint::write_json(swarmlint::lint_sources(inputs, {}), second);
    EXPECT_EQ(first.str(), second.str());
    EXPECT_NE(first.str().find("\"schema_version\": 1"), std::string::npos);
}

}  // namespace
