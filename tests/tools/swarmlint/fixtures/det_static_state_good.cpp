// swarmlint-fixture-path: src/sim/fixture_constants.cpp

namespace swarmavail::sim {

double horizon_cap() {
    static constexpr double kCap = 1.0e9;
    return kCap;
}

const char* phase_name() {
    static const char* const kName = "drain";
    return kName;
}

static int local_helper(int x) { return x + 1; }

int shifted(int x) { return local_helper(x); }

}  // namespace swarmavail::sim
