// swarmlint-fixture-path: src/model/fixture_checked.hpp
#pragma once

namespace swarmavail::model {

double half_life(double rate);

}  // namespace swarmavail::model
// swarmlint-fixture-path: src/model/fixture_checked.cpp
#include "model/fixture_checked.hpp"

#include "util/check.hpp"

namespace swarmavail::model {

double half_life(double rate) {
    SWARMAVAIL_REQUIRE(rate > 0.0, "half_life: rate must be > 0");
    return 0.6931 / rate;
}

}  // namespace swarmavail::model
