// swarmlint-fixture-path: src/util/random.hpp
#pragma once

#include <cstdint>
#include <random>

namespace swarmavail {

inline std::uint64_t hardware_seed() {
    std::random_device rd;
    return rd();
}

}  // namespace swarmavail
