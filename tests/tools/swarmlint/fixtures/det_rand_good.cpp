// swarmlint-fixture-path: src/util/random.cpp
#include <cstdint>
#include <random>

namespace swarmavail {

std::mt19937_64 make_engine(std::uint64_t seed) { return std::mt19937_64{seed}; }

}  // namespace swarmavail
