// swarmlint-fixture-path: src/sim/fixture_checked.cpp
#include "util/check.hpp"

namespace swarmavail::sim {

void validate_window(int n) {
    SWARMAVAIL_REQUIRE(n > 0, "window must be positive");
}

}  // namespace swarmavail::sim
