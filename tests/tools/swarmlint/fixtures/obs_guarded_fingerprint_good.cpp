// swarmlint-fixture-path: src/sim/fixture_fp_guarded.cpp

#include "sim/fingerprint.hpp"

namespace swarmavail::sim {

struct GuardedProbe {
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    Fingerprint* fingerprint_ = nullptr;
#endif

    void on_event(double when) {
        SWARMAVAIL_FPRINT(fingerprint_, when, 7U);
#ifndef SWARMAVAIL_FINGERPRINT_DISABLED
        if (fingerprint_ != nullptr) {
            fingerprint_->fold(1ULL);
        }
#endif
    }
};

}  // namespace swarmavail::sim
