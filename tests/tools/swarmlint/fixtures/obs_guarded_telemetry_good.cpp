// swarmlint-fixture-path: src/sim/fixture_guarded.cpp

namespace telemetry {
struct RunCounters;
void publish(double value);
}

namespace swarmavail::sim {

void attach_counters(telemetry::RunCounters* counters);

void tick_guarded() {
#ifndef SWARMAVAIL_TELEMETRY_DISABLED
    telemetry::publish(1.0);
#endif
    SWARMAVAIL_TELEMETRY(telemetry::publish(2.0));
}

}  // namespace swarmavail::sim
