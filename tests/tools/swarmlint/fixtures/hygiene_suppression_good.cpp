// swarmlint-fixture-path: src/sim/fixture_usedallow.cpp
// swarmlint-expect-suppressed: det-rand
// swarmlint-expect-suppressed: det-rand
#include <random>

namespace swarmavail::sim {

int seeded_draw() {
    // swarmlint-allow(det-rand): fixture exercises the line-above suppression path
    std::mt19937 gen(7);
    std::mt19937 gen2(9);  // swarmlint-allow(det-rand): fixture exercises the same-line suppression path
    return static_cast<int>(gen() + gen2());
}

}  // namespace swarmavail::sim
