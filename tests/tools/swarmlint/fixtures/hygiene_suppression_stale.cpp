// swarmlint-fixture-path: src/sim/fixture_staleallow.cpp
// swarmlint-expect: hygiene-suppression

namespace swarmavail::sim {

// swarmlint-allow(det-rand): nothing on the next line draws randomness
int fixture_stale();

}  // namespace swarmavail::sim
