// swarmlint-fixture-path: src/model/fixture_contract.hpp
#pragma once

namespace swarmavail::model {

double scale_rate(double rate, double factor);

}  // namespace swarmavail::model
// swarmlint-fixture-path: src/model/fixture_contract.cpp
// swarmlint-expect: contract-require-numeric
#include "model/fixture_contract.hpp"

namespace swarmavail::model {

double scale_rate(double rate, double factor) { return rate * factor; }

}  // namespace swarmavail::model
