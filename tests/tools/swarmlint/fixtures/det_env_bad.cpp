// swarmlint-fixture-path: src/catalog/fixture_env.cpp
// swarmlint-expect: det-env
#include <cstdlib>

namespace swarmavail::catalog {

int worker_count() {
    if (std::getenv("SWARM_WORKERS") != nullptr) {
        return 8;
    }
    return 1;
}

}  // namespace swarmavail::catalog
