// swarmlint-fixture-path: src/util/fixture_guarded.hpp
#pragma once

namespace swarmavail {

int guarded_header_value();

}  // namespace swarmavail
