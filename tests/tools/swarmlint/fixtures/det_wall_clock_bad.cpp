// swarmlint-fixture-path: src/swarm/fixture_timer.cpp
// swarmlint-expect: det-wall-clock
// swarmlint-expect: det-wall-clock
#include <chrono>
#include <ctime>

namespace swarmavail::swarm {

double now_seconds() {
    const auto tp = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(tp.time_since_epoch()).count();
}

long stamp_run() { return time(nullptr); }

}  // namespace swarmavail::swarm
