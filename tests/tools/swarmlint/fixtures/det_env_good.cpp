// swarmlint-fixture-path: src/util/fixture_host.cpp
#include <thread>

namespace swarmavail {

unsigned host_parallelism() { return std::thread::hardware_concurrency(); }

}  // namespace swarmavail
