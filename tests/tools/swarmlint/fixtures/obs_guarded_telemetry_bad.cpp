// swarmlint-fixture-path: src/sim/fixture_probe.cpp
// swarmlint-expect: obs-guarded-telemetry

namespace telemetry {
void publish(double value);
}

namespace swarmavail::sim {

void tick_probe() { telemetry::publish(1.0); }

}  // namespace swarmavail::sim
