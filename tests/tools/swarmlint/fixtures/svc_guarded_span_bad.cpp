// swarmlint-fixture-path: src/serve/fixture_probe.cpp
// swarmlint-expect: svc-guarded-span
// swarmlint-expect: svc-guarded-span

namespace swarmavail::serve {

struct RequestSpans {
    void begin(int stage);
};

struct SpanHub {
    void drain();
};

struct Probe {
    SpanHub* span_hub_ = nullptr;

    void handle(RequestSpans* spans) {
        spans->begin(1);
        span_hub_->drain();
    }
};

}  // namespace swarmavail::serve
