// swarmlint-fixture-path: src/util/fixture_plain.hpp
// swarmlint-expect: hygiene-pragma-once

namespace swarmavail {

int plain_header_value();

}  // namespace swarmavail
