// swarmlint-fixture-path: src/catalog/fixture_lookup.cpp
#include <map>
#include <unordered_map>

namespace swarmavail::catalog {

double lookup(const std::unordered_map<int, double>& table, int key) {
    const auto it = table.find(key);
    return it == table.end() ? 0.0 : it->second;
}

double ordered_sum(const std::map<int, double>& rows) {
    double s = 0.0;
    for (const auto& [id, value] : rows) {
        s += value;
    }
    return s;
}

}  // namespace swarmavail::catalog
