// swarmlint-fixture-path: src/swarm/fixture_trace_call.cpp
// swarmlint-expect: obs-macro-compile-out

namespace swarmavail::swarm {

void record_exchange() { SWARMAVAIL_TRACE_EVENT("exchange"); }

}  // namespace swarmavail::swarm
