// swarmlint-fixture-path: src/model/fixture_seed.cpp
// swarmlint-expect: det-random-device
#include <cstdint>
#include <random>

namespace swarmavail::model {

std::uint64_t entropy_seed() {
    std::random_device rd;
    return rd();
}

}  // namespace swarmavail::model
