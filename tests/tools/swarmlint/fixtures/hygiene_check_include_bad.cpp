// swarmlint-fixture-path: src/sim/fixture_nocheck.cpp
// swarmlint-expect: hygiene-check-include

namespace swarmavail::sim {

void validate_window(int n) {
    SWARMAVAIL_REQUIRE(n > 0, "window must be positive");
}

}  // namespace swarmavail::sim
