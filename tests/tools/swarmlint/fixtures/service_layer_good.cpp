// swarmlint-fixture-path: src/serve/latency.cpp
// The service layer measures request latency: wall clocks are its job, so
// det-wall-clock must stand down for src/serve/ (Layer::kService).
#include <chrono>

namespace swarmavail::serve {

double request_latency_seconds(std::chrono::steady_clock::time_point start) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(elapsed).count();
}

}  // namespace swarmavail::serve
