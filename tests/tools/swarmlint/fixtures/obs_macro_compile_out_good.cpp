// swarmlint-fixture-path: src/util/telemetry.hpp
#pragma once

#ifdef SWARMAVAIL_TELEMETRY_DISABLED
#define SWARMAVAIL_TELEMETRY_SAMPLE(expr) ((void)0)
#else
#define SWARMAVAIL_TELEMETRY_SAMPLE(expr) (expr)
#endif
// swarmlint-fixture-path: src/model/fixture_sample.cpp

namespace swarmavail::model {

void sample_rate() { SWARMAVAIL_TELEMETRY_SAMPLE(3); }

}  // namespace swarmavail::model
