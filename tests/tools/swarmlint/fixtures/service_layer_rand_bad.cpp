// swarmlint-fixture-path: src/serve/jitter.cpp
// swarmlint-expect: det-rand
// The wall-clock exemption for src/serve/ is not a blanket pass: entropy
// hygiene still applies, because response bytes must be a function of the
// request (seeds arrive in REFINE payloads, never from local PRNGs).
#include <random>

namespace swarmavail::serve {

unsigned backoff_jitter() {
    std::mt19937 gen(12345);
    return static_cast<unsigned>(gen());
}

}  // namespace swarmavail::serve
