// swarmlint-fixture-path: src/sim/fixture_counter.cpp
// swarmlint-expect: det-static-state

namespace swarmavail::sim {

int next_event_id() {
    static int counter = 0;
    return ++counter;
}

}  // namespace swarmavail::sim
