// swarmlint-fixture-path: src/sim/fixture_badallow.cpp
// swarmlint-expect: hygiene-suppression
// swarmlint-expect: hygiene-suppression
// swarmlint-expect: hygiene-suppression

namespace swarmavail::sim {

// swarmlint-allow det-rand: missing the parentheses around the rule
int fixture_one();

// swarmlint-allow(det-env) missing the colon separator
int fixture_two();

// swarmlint-allow(det-wall-clock):
int fixture_three();

}  // namespace swarmavail::sim
