// swarmlint-fixture-path: src/sim/fixture_rand.cpp
// swarmlint-expect: det-rand
#include <random>

namespace swarmavail::sim {

int draw_unseeded() {
    std::mt19937 gen(42);
    return static_cast<int>(gen());
}

}  // namespace swarmavail::sim
