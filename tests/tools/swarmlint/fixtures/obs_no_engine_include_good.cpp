// swarmlint-fixture-path: src/sim/trace.cpp
#include "sim/trace.hpp"
#include "util/stats.hpp"

namespace swarmavail::sim {

void flush_trace();

}  // namespace swarmavail::sim
