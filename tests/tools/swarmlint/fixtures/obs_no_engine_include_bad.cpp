// swarmlint-fixture-path: src/util/metrics.cpp
// swarmlint-expect: obs-no-engine-include
#include "swarm/swarm_sim.hpp"
#include "util/stats.hpp"

namespace swarmavail::metrics {

void observe();

}  // namespace swarmavail::metrics
