// swarmlint-fixture-path: src/serve/fixture_guarded.cpp

namespace swarmavail::serve {

struct RequestSpans {
    void begin(int stage);
};

struct SpanHub {
    void drain();
};

struct Probe {
    SpanHub* span_hub_ = nullptr;

    void handle(RequestSpans* spans) {
#ifndef SWARMAVAIL_SPANS_DISABLED
        spans->begin(1);
        span_hub_->drain();
#endif
        SWARMAVAIL_SPAN(spans, begin(2));
        RequestSpans* forwarded = spans;  // pointer copies are not touches
        static_cast<void>(forwarded);
    }
};

}  // namespace swarmavail::serve
