// swarmlint-fixture-path: src/util/profile.cpp
#include <chrono>

namespace swarmavail::profile {

double sample_now() {
    const auto tp = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(tp.time_since_epoch()).count();
}

}  // namespace swarmavail::profile
// swarmlint-fixture-path: src/sim/fixture_member_time.cpp

namespace swarmavail::sim {

struct VirtualClock {
    double now = 0.0;
};

double query(const VirtualClock& sched) {
    int clock = 0;
    return sched.time() + clock;
}

}  // namespace swarmavail::sim
