// swarmlint-fixture-path: src/sim/fixture_fp_probe.cpp
// swarmlint-expect: obs-guarded-fingerprint
// swarmlint-expect: obs-guarded-fingerprint

#include "sim/fingerprint.hpp"

namespace swarmavail::sim {

struct UnguardedProbe {
    Fingerprint* fingerprint_ = nullptr;

    void on_event() {
        if (fingerprint_ != nullptr) {
            fingerprint_->fold(1ULL);
        }
    }
};

}  // namespace swarmavail::sim
