// swarmlint-fixture-path: src/catalog/fixture_totals.cpp
// swarmlint-expect: det-unordered-iter
// swarmlint-expect: det-unordered-iter
#include <unordered_map>
#include <vector>

namespace swarmavail::catalog {

std::unordered_map<int, double> totals;

double sum_totals() {
    double s = 0.0;
    for (const auto& [id, value] : totals) {
        s += value;
    }
    return s;
}

std::vector<int> snapshot_keys() {
    std::vector<int> out;
    out.assign(totals.begin(), totals.end());
    return out;
}

}  // namespace swarmavail::catalog
