// swarmlint-fixture-path: src/sim/fixture_unknownallow.cpp
// swarmlint-expect: hygiene-suppression

namespace swarmavail::sim {

// swarmlint-allow(no-such-rule): the registry has never heard of this rule
int fixture_unknown();

}  // namespace swarmavail::sim
