// Compiles util/check.hpp with SWARMAVAIL_ENABLE_AUDIT force-defined, so the
// throwing SWARMAVAIL_ASSERT path is exercised deterministically in every
// build type -- including release builds where the sibling test_check.cpp
// sees the compiled-out form.
#ifndef SWARMAVAIL_ENABLE_AUDIT
#define SWARMAVAIL_ENABLE_AUDIT 1
#endif

#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace swarmavail {
namespace {

static_assert(SWARMAVAIL_AUDIT_CHECKS_ENABLED == 1,
              "force-defining SWARMAVAIL_ENABLE_AUDIT must enable the checks");

TEST(CheckAssertForcedAudit, FailureThrowsCheckFailureWithContext) {
    const int expected_line = __LINE__ + 2;
    try {
        SWARMAVAIL_ASSERT(1 > 2, "forced audit check fires");
        FAIL() << "SWARMAVAIL_ASSERT did not throw in forced-audit mode";
    } catch (const CheckFailure& e) {
        EXPECT_EQ(e.message(), "forced audit check fires");
        EXPECT_EQ(e.line(), expected_line);
        EXPECT_NE(std::string(e.file()).find("test_check_forced_audit.cpp"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("1 > 2"), std::string::npos);
    }
}

TEST(CheckAssertForcedAudit, ActiveFormEvaluatesConditionOnce) {
    int evaluations = 0;
    const auto touch = [&evaluations] {
        ++evaluations;
        return true;
    };
    SWARMAVAIL_ASSERT(touch(), "side effect runs when audit checks are on");
    EXPECT_EQ(evaluations, 1);
}

TEST(CheckAssertForcedAudit, PassingConditionIsSilent) {
    EXPECT_NO_THROW(SWARMAVAIL_ASSERT(2 + 2 == 4, "fine"));
}

}  // namespace
}  // namespace swarmavail
