#include "util/series.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace swarmavail {
namespace {

TEST(SumSeries, GeometricSeries) {
    // sum over i>=1 of 0.5^i = 1.
    const auto result = sum_series([](std::size_t i) { return std::pow(0.5, static_cast<double>(i)); });
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.value, 1.0, 1e-10);
}

TEST(SumSeries, ExponentialSeries) {
    // sum over i>=1 of x^i/i! = e^x - 1.
    const double x = 7.0;
    const auto result = sum_series([x](std::size_t i) {
        return std::exp(static_cast<double>(i) * std::log(x) - std::lgamma(static_cast<double>(i) + 1.0));
    });
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.value, std::exp(x) - 1.0, 1e-6 * std::exp(x));
}

TEST(SumSeries, HumpedSeriesNotTruncatedEarly) {
    // Terms of x^i/i! with x = 30 grow until i ~ 30: min_terms and the
    // two-consecutive-small rule must carry the summation over the hump.
    const double x = 30.0;
    const auto result = sum_series([x](std::size_t i) {
        return std::exp(static_cast<double>(i) * std::log(x) - std::lgamma(static_cast<double>(i) + 1.0));
    });
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.value / (std::exp(x) - 1.0), 1.0, 1e-9);
}

TEST(SumSeries, RespectsMaxTerms) {
    SeriesOptions options;
    options.max_terms = 10;
    const auto result = sum_series([](std::size_t) { return 1.0; }, options);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.terms, 10u);
    EXPECT_DOUBLE_EQ(result.value, 10.0);
}

TEST(SumSeries, SaturationToInfinityIsReported) {
    const auto result =
        sum_series([](std::size_t i) { return std::exp(static_cast<double>(i)); });
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(std::isinf(result.value));
}

TEST(LogFactorial, SmallValues) {
    EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
    EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
    EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
    EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogBinomial, MatchesDirectComputation) {
    EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
    EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-7);
    EXPECT_NEAR(std::exp(log_binomial(7, 0)), 1.0, 1e-12);
    EXPECT_NEAR(std::exp(log_binomial(7, 7)), 1.0, 1e-12);
}

TEST(LogBinomial, RejectsKGreaterThanN) {
    EXPECT_THROW((void)log_binomial(3, 4), std::invalid_argument);
}

TEST(PoissonPmf, SumsToOne) {
    const double mu = 4.2;
    double total = 0.0;
    for (std::size_t k = 0; k < 60; ++k) {
        total += poisson_pmf(k, mu);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PoissonPmf, KnownValues) {
    EXPECT_NEAR(poisson_pmf(0, 1.0), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(poisson_pmf(1, 1.0), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(poisson_pmf(2, 1.0), std::exp(-1.0) / 2.0, 1e-12);
}

TEST(PoissonPmf, ZeroMeanIsPointMass) {
    EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
}

TEST(LogAddExp, MatchesDirectForModerateValues) {
    EXPECT_NEAR(log_add_exp(std::log(3.0), std::log(4.0)), std::log(7.0), 1e-12);
}

TEST(LogAddExp, HandlesLargeMagnitudes) {
    // exp(1000) overflows, but log-add must stay finite and ~1000.
    const double result = log_add_exp(1000.0, 999.0);
    EXPECT_GT(result, 1000.0);
    EXPECT_LT(result, 1001.0);
}

TEST(LogAddExp, NegativeInfinityIsIdentity) {
    const double neg_inf = -std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(log_add_exp(neg_inf, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(log_add_exp(3.0, neg_inf), 3.0);
    EXPECT_TRUE(std::isinf(log_add_exp(neg_inf, neg_inf)));
}

TEST(Expm1Over, SmallArgumentPrecision) {
    // (e^x - 1)/y for tiny x must not cancel to zero.
    const double x = 1e-12;
    EXPECT_NEAR(expm1_over(x, 2.0), x / 2.0, 1e-20);
}

TEST(Expm1Over, LargeArgumentSaturates) {
    EXPECT_TRUE(std::isinf(expm1_over(800.0, 1.0)));
}

TEST(Expm1Over, RejectsNonPositiveDenominator) {
    EXPECT_THROW((void)expm1_over(1.0, 0.0), std::invalid_argument);
}

TEST(RelativeDifference, BasicProperties) {
    EXPECT_DOUBLE_EQ(relative_difference(1.0, 1.0), 0.0);
    EXPECT_NEAR(relative_difference(1.0, 1.1), 0.1 / 1.1, 1e-12);
    EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
    // Symmetric.
    EXPECT_DOUBLE_EQ(relative_difference(2.0, 3.0), relative_difference(3.0, 2.0));
}

}  // namespace
}  // namespace swarmavail
