// Telemetry layer semantics: run counters, convergence tracking, stop
// rules, the three exporters, JSONL round-trips, Prometheus validation,
// and the TelemetrySession snapshot lifecycle.
#include "util/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/stats.hpp"

namespace swarmavail::telemetry {
namespace {

TEST(AtomicAdd, AccumulatesDoubles) {
    std::atomic<double> x{1.5};
    atomic_add(x, 2.25);
    atomic_add(x, -0.75);
    EXPECT_DOUBLE_EQ(x.load(), 3.0);
}

TEST(ConvergenceTracker, TracksMetricsInFirstObservationOrder) {
    ConvergenceTracker tracker;
    tracker.observe("b", 2.0);
    tracker.observe("a", 10.0);
    tracker.observe("b", 4.0);
    const std::vector<TrackedStat> stats = tracker.snapshot();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].name, "b");
    EXPECT_EQ(stats[0].count, 2u);
    EXPECT_DOUBLE_EQ(stats[0].mean, 3.0);
    EXPECT_EQ(stats[0].min, 2.0);
    EXPECT_EQ(stats[0].max, 4.0);
    EXPECT_EQ(stats[0].last, 4.0);
    EXPECT_EQ(stats[1].name, "a");
    EXPECT_EQ(stats[1].count, 1u);
    EXPECT_EQ(stats[1].last, 10.0);
}

TEST(StopRule, RequiresTargetMinObservationsAndTightCi) {
    StreamingStats stats;
    StopRule rule{0.5, 4};
    EXPECT_FALSE(rule.satisfied(stats));  // no observations
    for (int i = 0; i < 3; ++i) {
        stats.add(1.0);
    }
    EXPECT_FALSE(rule.satisfied(stats));  // below min_observations
    stats.add(1.0);
    EXPECT_TRUE(rule.satisfied(stats));  // zero variance: half-width 0

    StopRule disabled{0.0, 1};
    EXPECT_FALSE(disabled.satisfied(stats));  // target 0 never fires

    StreamingStats wide;
    wide.add(0.0);
    wide.add(100.0);
    wide.add(0.0);
    wide.add(100.0);
    StopRule tight{0.01, 2};
    EXPECT_FALSE(tight.satisfied(wide));  // half-width far above target
    EXPECT_GT(wide.ci95_halfwidth(), 0.01);
}

TEST(MemoryExporter, RingDropsOldest) {
    MemoryTelemetryExporter ring{3};
    for (std::uint64_t i = 0; i < 5; ++i) {
        TelemetrySnapshot snapshot;
        snapshot.sequence = i;
        ring.export_snapshot(snapshot);
    }
    EXPECT_EQ(ring.dropped(), 2u);
    ASSERT_EQ(ring.snapshots().size(), 3u);
    EXPECT_EQ(ring.snapshots().front().sequence, 2u);
    EXPECT_EQ(ring.snapshots().back().sequence, 4u);
}

TelemetrySnapshot sample_snapshot() {
    TelemetrySnapshot snapshot;
    snapshot.sequence = 7;
    snapshot.wall_time_s = 1.75;
    snapshot.final_snapshot = true;
    snapshot.replications_total = 40;
    snapshot.replications_completed = 13;
    snapshot.swarms_total = 5;
    snapshot.swarms_completed = 2;
    snapshot.events_dispatched = 123456789;
    snapshot.events_per_s = 0.1 + 0.2;  // deliberately non-representable
    snapshot.sim_time_advanced = 1.0e7 / 3.0;
    snapshot.sim_time_target = 4.0e7;
    snapshot.sim_time_rate = 98765.4321;
    snapshot.queue_depth = 17.0;
    snapshot.progress = 0.325;
    snapshot.eta_s = 3.64;
    snapshot.rss_bytes = 52 * 1024 * 1024;
    snapshot.peak_rss_bytes = 64 * 1024 * 1024;
    snapshot.tracked.push_back(
        {"catalog.swarm_unavailability", 13, 0.071234, 0.0123, 0.01, 0.4, 0.05});
    snapshot.tracked.push_back({"swarm.download_time_s", 4, 812.5, 40.25, 700.0,
                                900.0, 820.125});
    return snapshot;
}

TEST(JsonlExporter, RoundTripsBitExactly) {
    const TelemetrySnapshot original = sample_snapshot();
    std::ostringstream os;
    JsonlTelemetryExporter exporter{os};
    exporter.export_snapshot(original);
    TelemetrySnapshot plain;  // all defaults: pins optional-field handling
    plain.sequence = 8;
    exporter.export_snapshot(plain);

    std::istringstream in{os.str()};
    const std::vector<TelemetrySnapshot> parsed = read_telemetry_jsonl(in);
    ASSERT_EQ(parsed.size(), 2u);
    const TelemetrySnapshot& back = parsed[0];
    EXPECT_EQ(back.sequence, original.sequence);
    EXPECT_EQ(back.wall_time_s, original.wall_time_s);
    EXPECT_EQ(back.final_snapshot, original.final_snapshot);
    EXPECT_EQ(back.replications_total, original.replications_total);
    EXPECT_EQ(back.replications_completed, original.replications_completed);
    EXPECT_EQ(back.swarms_total, original.swarms_total);
    EXPECT_EQ(back.swarms_completed, original.swarms_completed);
    EXPECT_EQ(back.events_dispatched, original.events_dispatched);
    EXPECT_EQ(back.events_per_s, original.events_per_s);  // bit-exact doubles
    EXPECT_EQ(back.sim_time_advanced, original.sim_time_advanced);
    EXPECT_EQ(back.sim_time_target, original.sim_time_target);
    EXPECT_EQ(back.sim_time_rate, original.sim_time_rate);
    EXPECT_EQ(back.queue_depth, original.queue_depth);
    EXPECT_EQ(back.progress, original.progress);
    EXPECT_EQ(back.eta_s, original.eta_s);
    EXPECT_EQ(back.rss_bytes, original.rss_bytes);
    EXPECT_EQ(back.peak_rss_bytes, original.peak_rss_bytes);
    ASSERT_EQ(back.tracked.size(), 2u);
    EXPECT_EQ(back.tracked[0].name, "catalog.swarm_unavailability");
    EXPECT_EQ(back.tracked[0].count, 13u);
    EXPECT_EQ(back.tracked[0].mean, 0.071234);
    EXPECT_EQ(back.tracked[0].ci95_halfwidth, original.tracked[0].ci95_halfwidth);
    EXPECT_EQ(back.tracked[1].last, 820.125);
    EXPECT_EQ(parsed[1].sequence, 8u);
    EXPECT_TRUE(parsed[1].tracked.empty());
}

TEST(ReadTelemetryJsonl, RejectsMalformedStreams) {
    const std::vector<std::string> bad{
        "not json at all\n",
        "{\"seq\":1\n",                       // truncated object
        "{\"wrong_first_key\":1}\n",          // wrong shape
        "{\"seq\":\"oops\"}\n",               // wrong value type
    };
    for (const std::string& text : bad) {
        std::istringstream in{text};
        EXPECT_THROW((void)read_telemetry_jsonl(in), std::invalid_argument)
            << "input: " << text;
    }
    std::istringstream empty{""};
    EXPECT_TRUE(read_telemetry_jsonl(empty).empty());  // empty stream is fine
}

TEST(Prometheus, WriteOutputValidates) {
    std::ostringstream os;
    write_prometheus(sample_snapshot(), os);
    const std::string text = os.str();
    std::string error;
    EXPECT_TRUE(validate_prometheus_text(text, &error)) << error;
    EXPECT_NE(text.find("swarmavail_replications_completed 13"), std::string::npos);
    EXPECT_NE(text.find("# TYPE swarmavail_events_dispatched_total counter"),
              std::string::npos);
    EXPECT_NE(
        text.find("{metric=\"catalog.swarm_unavailability\"}"),
        std::string::npos);
}

TEST(Prometheus, ValidatorRejectsBrokenExpositions) {
    std::string error;
    EXPECT_FALSE(validate_prometheus_text("metric_without_value\n", &error));
    EXPECT_FALSE(validate_prometheus_text("9leading_digit 1\n", &error));
    EXPECT_FALSE(validate_prometheus_text("ok 1", &error));  // no trailing newline
    EXPECT_FALSE(validate_prometheus_text("ok notanumber\n", &error));
    EXPECT_FALSE(
        validate_prometheus_text("ok{label=\"unterminated} 1\n", &error));
    // A sample line alone never validates: at least one TYPE line required.
    EXPECT_FALSE(validate_prometheus_text("ok 1\n", &error));
    EXPECT_TRUE(
        validate_prometheus_text("# TYPE ok gauge\nok 1\n", &error))
        << error;
}

TEST(PrometheusFileExporter, RewritesTheFileAtomically) {
    const std::string path = ::testing::TempDir() + "swarmavail_prom_test.prom";
    PrometheusTextExporter exporter{path};
    TelemetrySnapshot snapshot = sample_snapshot();
    exporter.export_snapshot(snapshot);
    snapshot.sequence = 8;
    snapshot.events_dispatched += 1000;
    exporter.export_snapshot(snapshot);  // second write replaces the first

    std::ifstream in{path};
    ASSERT_TRUE(in.is_open());
    std::ostringstream content;
    content << in.rdbuf();
    std::string error;
    EXPECT_TRUE(validate_prometheus_text(content.str(), &error)) << error;
    EXPECT_NE(content.str().find("swarmavail_events_dispatched_total 123457789"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(ReadProcessRss, ReportsResidentMemoryOnLinux) {
    std::uint64_t rss = 0;
    std::uint64_t peak = 0;
    const bool supported = read_process_rss(rss, peak);
#if defined(__linux__)
    EXPECT_TRUE(supported);
    EXPECT_GT(rss, 0u);
    EXPECT_GE(peak, rss);
#else
    (void)supported;
#endif
}

TEST(TelemetrySession, SnapshotNowReflectsCountersAndProgress) {
    MemoryTelemetryExporter ring;
    TelemetryConfig config;
    config.interval_s = 60.0;  // never fires on its own in this test
    config.exporters.push_back(&ring);
    TelemetrySession session{config};

    session.counters().replications_total.store(10);
    session.counters().replications_completed.store(4);
    session.counters().events_dispatched.store(500);
    session.tracker().observe("x", 1.0);
    session.tracker().observe("x", 3.0);

    const TelemetrySnapshot first = session.snapshot_now();
    EXPECT_EQ(first.sequence, 0u);
    EXPECT_EQ(first.replications_completed, 4u);
    EXPECT_EQ(first.events_dispatched, 500u);
    EXPECT_DOUBLE_EQ(first.progress, 0.4);
    EXPECT_GE(first.eta_s, 0.0);  // progress known, so an ETA exists
    ASSERT_EQ(first.tracked.size(), 1u);
    EXPECT_DOUBLE_EQ(first.tracked[0].mean, 2.0);

    session.counters().replications_completed.store(10);
    const TelemetrySnapshot second = session.snapshot_now();
    EXPECT_EQ(second.sequence, 1u);
    EXPECT_DOUBLE_EQ(second.progress, 1.0);
    EXPECT_GE(second.wall_time_s, first.wall_time_s);

    ASSERT_EQ(ring.snapshots().size(), 2u);
    EXPECT_EQ(ring.snapshots()[0].sequence, 0u);
    EXPECT_EQ(ring.snapshots()[1].sequence, 1u);
    EXPECT_EQ(session.snapshots_taken(), 2u);
}

TEST(TelemetrySession, ProgressIsMaxOfCompletionFractions) {
    TelemetrySession session{TelemetryConfig{60.0, {}}};
    session.counters().swarms_total.store(4);
    session.counters().swarms_completed.store(3);
    session.counters().sim_time_target.store(100.0);
    session.counters().sim_time_advanced.store(10.0);
    const TelemetrySnapshot snapshot = session.snapshot_now();
    EXPECT_DOUBLE_EQ(snapshot.progress, 0.75);  // swarm fraction dominates
}

TEST(TelemetrySession, PeriodicSamplerEmitsAndStopEmitsFinal) {
    MemoryTelemetryExporter ring;
    TelemetryConfig config;
    config.interval_s = 0.01;
    config.exporters.push_back(&ring);
    TelemetrySession session{config};
    session.start();
    EXPECT_TRUE(session.running());
    // Wait until the sampler has demonstrably fired a few times.
    for (int i = 0; i < 500 && session.snapshots_taken() < 3; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(session.snapshots_taken(), 3u);
    session.stop();
    EXPECT_FALSE(session.running());

    ASSERT_GE(ring.snapshots().size(), 4u);  // >= 3 periodic + the final one
    EXPECT_TRUE(ring.snapshots().back().final_snapshot);
    for (std::size_t i = 0; i + 1 < ring.snapshots().size(); ++i) {
        EXPECT_FALSE(ring.snapshots()[i].final_snapshot);
        EXPECT_EQ(ring.snapshots()[i].sequence + 1,
                  ring.snapshots()[i + 1].sequence);
        EXPECT_LE(ring.snapshots()[i].wall_time_s,
                  ring.snapshots()[i + 1].wall_time_s);
    }

    const std::size_t count = ring.snapshots().size();
    session.stop();  // idempotent: no extra snapshot
    EXPECT_EQ(ring.snapshots().size(), count);
}

TEST(TelemetrySession, RejectsNonPositiveIntervalAndNullExporters) {
    EXPECT_THROW((TelemetrySession{TelemetryConfig{0.0, {}}}),
                 std::invalid_argument);
    TelemetryConfig with_null;
    with_null.exporters.push_back(nullptr);
    EXPECT_THROW((TelemetrySession{with_null}), std::invalid_argument);
}

TEST(TelemetryMacro, NullSessionIsANoOp) {
    TelemetrySession* session = nullptr;
    // Must compile and do nothing — the detached-engine code path.
    SWARMAVAIL_TELEMETRY(session, counters().events_dispatched.fetch_add(
                                      1, std::memory_order_relaxed));
    TelemetrySession live{TelemetryConfig{60.0, {}}};
    session = &live;
    SWARMAVAIL_TELEMETRY(session, counters().events_dispatched.fetch_add(
                                      7, std::memory_order_relaxed));
#if defined(SWARMAVAIL_TELEMETRY_DISABLED)
    // Trace-off preset: the macro compiles to nothing even with a session.
    EXPECT_EQ(live.counters().events_dispatched.load(), 0u);
#else
    EXPECT_EQ(live.counters().events_dispatched.load(), 7u);
#endif
}

}  // namespace
}  // namespace swarmavail::telemetry
