#include "util/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace swarmavail {
namespace {

TEST(CheckRequire, PassingConditionIsSilent) {
    EXPECT_NO_THROW(SWARMAVAIL_REQUIRE(1 + 1 == 2, "arithmetic holds"));
}

TEST(CheckRequire, FailureThrowsInvalidArgumentWithContext) {
    try {
        SWARMAVAIL_REQUIRE(2 < 1, "two is not less than one");
        FAIL() << "SWARMAVAIL_REQUIRE did not throw";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("two is not less than one"), std::string::npos) << what;
        EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
        EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    }
}

TEST(CheckInvariant, PassingConditionIsSilent) {
    EXPECT_NO_THROW(SWARMAVAIL_INVARIANT(true, "trivially fine"));
}

TEST(CheckInvariant, FailurePropagatesFileLineAndMessage) {
    const int expected_line = __LINE__ + 2;
    try {
        SWARMAVAIL_INVARIANT(false, "bookkeeping drifted");
        FAIL() << "SWARMAVAIL_INVARIANT did not throw";
    } catch (const CheckFailure& e) {
        EXPECT_EQ(e.message(), "bookkeeping drifted");
        EXPECT_EQ(e.line(), expected_line);
        EXPECT_NE(std::string(e.file()).find("test_check.cpp"), std::string::npos);
        const std::string what = e.what();
        EXPECT_NE(what.find("SWARMAVAIL_INVARIANT"), std::string::npos) << what;
        EXPECT_NE(what.find("bookkeeping drifted"), std::string::npos) << what;
        EXPECT_NE(what.find(std::to_string(expected_line)), std::string::npos) << what;
    }
}

TEST(CheckInvariant, FailureIsCatchableAsLogicError) {
    EXPECT_THROW(SWARMAVAIL_INVARIANT(false, "still a logic error"), std::logic_error);
}

TEST(CheckAssert, BehaviorMatchesCompileTimeGate) {
#if SWARMAVAIL_AUDIT_CHECKS_ENABLED
    EXPECT_THROW(SWARMAVAIL_ASSERT(false, "audit build checks"), CheckFailure);
#else
    EXPECT_NO_THROW(SWARMAVAIL_ASSERT(false, "release build skips"));
#endif
}

TEST(CheckAssert, CompiledOutFormDoesNotEvaluateCondition) {
#if !SWARMAVAIL_AUDIT_CHECKS_ENABLED
    int evaluations = 0;
    const auto touch = [&evaluations] {
        ++evaluations;
        return false;
    };
    SWARMAVAIL_ASSERT(touch(), "must stay unevaluated when compiled out");
    EXPECT_EQ(evaluations, 0);
#else
    GTEST_SKIP() << "audit checks are enabled in this build";
#endif
}

// The legacy function-style helpers are wrappers over the same machinery and
// must keep their documented exception types.
TEST(ErrorHelpers, RequireThrowsInvalidArgumentWithCallerLocation) {
    EXPECT_NO_THROW(require(true, "fine"));
    try {
        require(false, "rate must be positive");
        FAIL() << "require did not throw";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("rate must be positive"), std::string::npos) << what;
        EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    }
}

TEST(ErrorHelpers, EnsureThrowsCheckFailure) {
    EXPECT_NO_THROW(ensure(true, "fine"));
    try {
        ensure(false, "holder count underflow");
        FAIL() << "ensure did not throw";
    } catch (const CheckFailure& e) {
        EXPECT_EQ(e.message(), "holder count underflow");
        EXPECT_NE(std::string(e.file()).find("test_check.cpp"), std::string::npos);
        EXPECT_GT(e.line(), 0);
    }
    // Existing call sites catch std::logic_error; that contract holds.
    EXPECT_THROW(ensure(false, "legacy catch sites"), std::logic_error);
}

}  // namespace
}  // namespace swarmavail
