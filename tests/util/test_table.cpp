#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace swarmavail {
namespace {

TEST(TableWriter, RejectsEmptyHeader) {
    EXPECT_THROW((TableWriter{{}}), std::invalid_argument);
}

TEST(TableWriter, RejectsMismatchedRow) {
    TableWriter table{{"a", "b"}};
    EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(TableWriter, AlignedOutputContainsAllCells) {
    TableWriter table{{"K", "E[T]"}};
    table.add_row({"1", "100"});
    table.add_row({"2", "250.5"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("K"), std::string::npos);
    EXPECT_NE(text.find("E[T]"), std::string::npos);
    EXPECT_NE(text.find("250.5"), std::string::npos);
    // Header separator row present.
    EXPECT_NE(text.find("|--"), std::string::npos);
}

TEST(TableWriter, NumericRowFormatting) {
    TableWriter table{{"x", "y"}};
    table.add_numeric_row(std::vector<double>{1.23456789, 2.0}, 4);
    std::ostringstream out;
    table.print(out);
    EXPECT_NE(out.str().find("1.235"), std::string::npos);
}

TEST(TableWriter, CsvOutput) {
    TableWriter table{{"name", "value"}};
    table.add_row({"plain", "1"});
    std::ostringstream out;
    table.print_csv(out);
    EXPECT_EQ(out.str(), "name,value\nplain,1\n");
}

TEST(TableWriter, CsvEscapesSpecialCharacters) {
    TableWriter table{{"name"}};
    table.add_row({"has,comma"});
    table.add_row({"has\"quote"});
    std::ostringstream out;
    table.print_csv(out);
    EXPECT_NE(out.str().find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableWriter, CountsRowsAndColumns) {
    TableWriter table{{"a", "b", "c"}};
    EXPECT_EQ(table.columns(), 3u);
    EXPECT_EQ(table.rows(), 0u);
    table.add_row({"1", "2", "3"});
    EXPECT_EQ(table.rows(), 1u);
}

TEST(FormatDouble, PrecisionControlsDigits) {
    EXPECT_EQ(format_double(3.14159, 3), "3.14");
    EXPECT_EQ(format_double(1000.0, 6), "1000");
}

TEST(PrintBanner, ContainsTitle) {
    std::ostringstream out;
    print_banner(out, "Figure 3");
    EXPECT_NE(out.str().find("== Figure 3 =="), std::string::npos);
}

}  // namespace
}  // namespace swarmavail
