// Metrics registry semantics: get-or-create, kind/shape conflicts,
// histogram bucketing, and the index-order merge determinism contract.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace swarmavail {
namespace {

TEST(Counter, AddsAndMerges) {
    Counter a;
    EXPECT_EQ(a.value(), 0u);
    a.add();
    a.add(5);
    EXPECT_EQ(a.value(), 6u);
    Counter b;
    b.add(10);
    a.merge(b);
    EXPECT_EQ(a.value(), 16u);
}

TEST(Gauge, TracksLastValueAndStats) {
    Gauge g;
    g.set(2.0);
    g.set(8.0);
    g.set(5.0);
    EXPECT_EQ(g.value(), 5.0);
    EXPECT_EQ(g.stats().count(), 3u);
    EXPECT_EQ(g.stats().min(), 2.0);
    EXPECT_EQ(g.stats().max(), 8.0);
    EXPECT_DOUBLE_EQ(g.stats().mean(), 5.0);
}

TEST(Gauge, MergeTakesLaterLastValueOnlyIfRecorded) {
    Gauge a;
    a.set(1.0);
    Gauge empty;
    a.merge(empty);
    EXPECT_EQ(a.value(), 1.0);  // empty other side: last value unchanged
    Gauge b;
    b.set(7.0);
    a.merge(b);
    EXPECT_EQ(a.value(), 7.0);  // later replication wins
    EXPECT_EQ(a.stats().count(), 2u);
}

TEST(HistogramMetric, LinearBucketingWithClamping) {
    HistogramMetric h{0.0, 10.0, 5};
    h.add(-3.0);  // below lo: clamps into bin 0
    h.add(0.5);
    h.add(9.9);
    h.add(25.0);  // above hi: clamps into the last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bin_count(0), 2u);
    EXPECT_EQ(h.bin_count(4), 2u);
    EXPECT_EQ(h.stats().count(), 4u);
    EXPECT_EQ(h.stats().max(), 25.0);  // stats see the raw values
    EXPECT_EQ(h.bin_lo(0), 0.0);
    EXPECT_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramMetric, Log2BucketingCoversDecades) {
    HistogramMetric h{1.0, 1024.0, 10, HistogramScale::kLog2};
    // Each power of two lands in its own bin.
    for (int p = 0; p < 10; ++p) {
        h.add(std::pow(2.0, p) * 1.5);
    }
    for (std::size_t i = 0; i < h.bins(); ++i) {
        EXPECT_EQ(h.bin_count(i), 1u) << "bin " << i;
    }
    EXPECT_EQ(h.lo(), 1.0);
    EXPECT_EQ(h.hi(), 1024.0);
}

TEST(HistogramMetric, Log2EdgePinning) {
    // Pin the bucket edges of the log2 scale with power-of-two lo/hi: one
    // bin per octave, edges exactly at the powers of two. These cases catch
    // the off-by-one that natural-log bucket math exhibits when log(2^k)
    // rounds a hair above or below k*log(2).
    HistogramMetric h{1.0, 1048576.0, 20, HistogramScale::kLog2};

    // The edges themselves must be the exact powers of two.
    for (std::size_t i = 0; i < h.bins(); ++i) {
        EXPECT_EQ(h.bin_lo(i), std::exp2(static_cast<double>(i))) << "bin " << i;
        EXPECT_EQ(h.bin_hi(i), std::exp2(static_cast<double>(i + 1))) << "bin " << i;
    }

    // Zero and anything at or below lo clamp into bin 0.
    h.add(0.0);
    h.add(-5.0);
    h.add(1.0);
    EXPECT_EQ(h.bin_count(0), 3u);

    // An exact power of two 2^k is the lower edge of bin k and must land
    // there, consistent with bin_lo — half-open [bin_lo, bin_hi) buckets.
    for (int p = 1; p < 20; ++p) {
        h.add(std::exp2(p));
    }
    for (std::size_t i = 1; i < h.bins(); ++i) {
        EXPECT_EQ(h.bin_count(i), 1u) << "power-of-two edge 2^" << i;
    }

    // Values at or beyond hi overflow into the last bucket.
    h.add(1048576.0);        // == hi
    h.add(3.0e7);            // way past hi
    EXPECT_EQ(h.bin_count(19), 3u);
    EXPECT_EQ(h.total(), 24u);
}

TEST(HistogramMetric, Log2NonPowerOfTwoRangeStillClamps) {
    // The exactness argument is strongest for power-of-two ranges, but the
    // clamping contract (never drop an observation, never index out of
    // range) holds for any shape.
    HistogramMetric h{0.5, 300.0, 7, HistogramScale::kLog2};
    h.add(0.0);
    h.add(0.5);
    h.add(299.999);
    h.add(300.0);
    h.add(1.0e12);
    EXPECT_EQ(h.bin_count(0), 2u);
    EXPECT_EQ(h.bin_count(6), 3u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bin_lo(0), 0.5);
    EXPECT_EQ(h.bin_hi(6), 300.0);
}

TEST(HistogramMetric, RejectsBadShapes) {
    EXPECT_THROW((HistogramMetric{1.0, 1.0, 4}), std::invalid_argument);
    EXPECT_THROW((HistogramMetric{0.0, 8.0, 4, HistogramScale::kLog2}),
                 std::invalid_argument);
    EXPECT_THROW((HistogramMetric{0.0, 1.0, 0}), std::invalid_argument);
}

TEST(HistogramMetric, MergeRequiresIdenticalShape) {
    HistogramMetric a{0.0, 10.0, 5};
    HistogramMetric b{0.0, 10.0, 5};
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 1u);
    HistogramMetric wrong{0.0, 10.0, 6};
    EXPECT_THROW(a.merge(wrong), std::invalid_argument);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
    MetricsRegistry reg;
    Counter& c = reg.counter("events");
    c.add(3);
    EXPECT_EQ(&reg.counter("events"), &c);
    EXPECT_EQ(reg.counter("events").value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindConflictsThrow) {
    MetricsRegistry reg;
    (void)reg.counter("x");
    EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
    EXPECT_THROW((void)reg.histogram("x", 0.0, 1.0, 4), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramShapeConflictThrows) {
    MetricsRegistry reg;
    (void)reg.histogram("h", 1.0, 1024.0, 10, HistogramScale::kLog2);
    // Re-registering with the identical shape is fine (also for log scale,
    // where lo/hi must round-trip exactly through the accessors)...
    (void)reg.histogram("h", 1.0, 1024.0, 10, HistogramScale::kLog2);
    // ...but any shape difference throws.
    EXPECT_THROW((void)reg.histogram("h", 1.0, 1024.0, 11, HistogramScale::kLog2),
                 std::invalid_argument);
    EXPECT_THROW((void)reg.histogram("h", 1.0, 1024.0, 10, HistogramScale::kLinear),
                 std::invalid_argument);
}

TEST(MetricsRegistry, NamesPreserveRegistrationOrder) {
    MetricsRegistry reg;
    (void)reg.counter("b");
    (void)reg.gauge("a");
    (void)reg.histogram("c", 0.0, 1.0, 2);
    EXPECT_EQ(reg.names(), (std::vector<std::string>{"b", "a", "c"}));
}

TEST(MetricsRegistry, FindersReturnNullForMissingOrWrongKind) {
    MetricsRegistry reg;
    (void)reg.counter("c");
    EXPECT_NE(reg.find_counter("c"), nullptr);
    EXPECT_EQ(reg.find_counter("missing"), nullptr);
    EXPECT_EQ(reg.find_gauge("c"), nullptr);
    EXPECT_EQ(reg.find_histogram("c"), nullptr);
}

TEST(MetricsRegistry, MergeCreatesMissingEntriesAndCombines) {
    MetricsRegistry a;
    a.counter("events").add(2);
    MetricsRegistry b;
    b.counter("events").add(3);
    b.gauge("depth").set(4.0);
    b.histogram("lat", 0.0, 10.0, 5).add(1.0);
    a.merge(b);
    EXPECT_EQ(a.find_counter("events")->value(), 5u);
    ASSERT_NE(a.find_gauge("depth"), nullptr);
    EXPECT_EQ(a.find_gauge("depth")->value(), 4.0);
    ASSERT_NE(a.find_histogram("lat"), nullptr);
    EXPECT_EQ(a.find_histogram("lat")->total(), 1u);
}

TEST(MetricsRegistry, IndexOrderMergeIsDeterministic) {
    // The determinism contract parallel replications rely on: merging the
    // same per-replication parts strictly in index order yields bitwise
    // identical results no matter when or by which thread the parts were
    // recorded. (Welford-merge is NOT bitwise equal to one sequential
    // stream — only counts, bins, and extrema are exact; the pooled
    // moments are pinned by repeating the merge itself.)
    const std::vector<std::vector<double>> streams{
        {0.1, 0.3, 1.7}, {2.5}, {}, {0.9, 0.4, 3.1, 0.05}};
    auto record_parts = [&streams] {
        std::vector<MetricsRegistry> parts(streams.size());
        for (std::size_t i = 0; i < streams.size(); ++i) {
            HistogramMetric& h =
                parts[i].histogram("h", 0.01, 16.0, 8, HistogramScale::kLog2);
            Gauge& g = parts[i].gauge("g");
            for (double v : streams[i]) {
                h.add(v);
                g.set(v);
            }
        }
        MetricsRegistry merged;
        for (const auto& part : parts) {
            merged.merge(part);
        }
        return merged;
    };
    const MetricsRegistry merged = record_parts();
    const MetricsRegistry again = record_parts();

    const HistogramMetric& mh = *merged.find_histogram("h");
    const HistogramMetric& ah = *again.find_histogram("h");
    EXPECT_EQ(mh.stats().count(), ah.stats().count());
    EXPECT_EQ(mh.stats().mean(), ah.stats().mean());
    EXPECT_EQ(mh.stats().variance(), ah.stats().variance());
    EXPECT_EQ(merged.find_gauge("g")->stats().mean(), again.find_gauge("g")->stats().mean());

    // Against the single sequential stream, the structural aggregates are
    // exact: count, bin occupancy, min/max, last gauge value, and the mean
    // to double precision.
    MetricsRegistry sequential;
    HistogramMetric& seq_h =
        sequential.histogram("h", 0.01, 16.0, 8, HistogramScale::kLog2);
    Gauge& seq_g = sequential.gauge("g");
    for (const auto& stream : streams) {
        for (double v : stream) {
            seq_h.add(v);
            seq_g.set(v);
        }
    }
    EXPECT_EQ(mh.total(), seq_h.total());
    for (std::size_t i = 0; i < mh.bins(); ++i) {
        EXPECT_EQ(mh.bin_count(i), seq_h.bin_count(i));
    }
    EXPECT_EQ(mh.stats().count(), seq_h.stats().count());
    EXPECT_DOUBLE_EQ(mh.stats().mean(), seq_h.stats().mean());
    EXPECT_EQ(mh.stats().min(), seq_h.stats().min());
    EXPECT_EQ(mh.stats().max(), seq_h.stats().max());
    const Gauge& mg = *merged.find_gauge("g");
    EXPECT_EQ(mg.value(), seq_g.value());
    EXPECT_DOUBLE_EQ(mg.stats().mean(), seq_g.stats().mean());
}

TEST(MetricsRegistry, WriteJsonEmitsEveryKind) {
    MetricsRegistry reg;
    reg.counter("events").add(7);
    reg.gauge("depth").set(1.5);
    reg.histogram("lat", 0.0, 4.0, 2).add(3.0);
    std::ostringstream os;
    reg.write_json(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"name\":\"events\",\"kind\":\"counter\",\"value\":7"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"depth\",\"kind\":\"gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"bins\":[0,1]"), std::string::npos);
}

}  // namespace
}  // namespace swarmavail
