#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace swarmavail {
namespace {

TEST(StreamingStats, EmptyDefaults) {
    StreamingStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_EQ(stats.ci95_halfwidth(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
    StreamingStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stats.add(x);
    }
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(StreamingStats, SingleValue) {
    StreamingStats stats;
    stats.add(3.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), 3.0);
    EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(StreamingStats, MergeMatchesCombinedStream) {
    StreamingStats left;
    StreamingStats right;
    StreamingStats all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10.0;
        (i % 2 == 0 ? left : right).add(x);
        all.add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptyIsNoOp) {
    StreamingStats stats;
    stats.add(1.0);
    stats.add(2.0);
    StreamingStats empty;
    stats.merge(empty);
    EXPECT_EQ(stats.count(), 2u);
    EXPECT_DOUBLE_EQ(stats.mean(), 1.5);
    empty.merge(stats);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(StreamingStats, PairwiseMergePinsCiAgainstSingleStream) {
    // Chan et al. pairwise merging across four chunks must reproduce the
    // single-stream mean/variance/CI: this is what lets the parallel
    // replication engine pool per-thread accumulators.
    StreamingStats all;
    StreamingStats chunks[4];
    for (int i = 0; i < 200; ++i) {
        const double x = std::cos(i) * 3.0 + 0.01 * i;
        chunks[i % 4].add(x);
        all.add(x);
    }
    chunks[0].merge(chunks[1]);
    chunks[2].merge(chunks[3]);
    chunks[0].merge(chunks[2]);
    EXPECT_EQ(chunks[0].count(), all.count());
    EXPECT_NEAR(chunks[0].mean(), all.mean(), 1e-12);
    EXPECT_NEAR(chunks[0].variance(), all.variance(), 1e-9);
    EXPECT_NEAR(chunks[0].std_error(), all.std_error(), 1e-12);
    EXPECT_NEAR(chunks[0].ci95_halfwidth(), all.ci95_halfwidth(), 1e-12);
    EXPECT_NEAR(chunks[0].sum(), all.sum(), 1e-9);
}

TEST(SampleSet, MergeMatchesSingleStreamExactly) {
    // merge() is an ordered append, so every pooled statistic -- moments,
    // quantiles, CI -- is bit-identical to one set fed the same sequence.
    SampleSet merged;
    SampleSet single;
    std::vector<double> first{3.0, 1.0, 4.0};
    std::vector<double> second{1.5, 9.0, 2.6, 5.0};
    single.add_all(first);
    single.add_all(second);
    merged.merge(SampleSet{std::move(first)});
    merged.merge(SampleSet{std::move(second)});
    EXPECT_EQ(merged.samples(), single.samples());
    EXPECT_DOUBLE_EQ(merged.mean(), single.mean());
    EXPECT_DOUBLE_EQ(merged.variance(), single.variance());
    EXPECT_DOUBLE_EQ(merged.quantile(0.25), single.quantile(0.25));
    EXPECT_DOUBLE_EQ(merged.median(), single.median());
    EXPECT_DOUBLE_EQ(merged.ci95_halfwidth(), single.ci95_halfwidth());
}

TEST(SampleSet, MergeEmptyCases) {
    SampleSet set;
    set.merge(SampleSet{});  // empty into empty
    EXPECT_TRUE(set.empty());
    set.merge(SampleSet{{2.0, 1.0}});  // into empty: takes the batch
    EXPECT_EQ(set.size(), 2u);
    EXPECT_DOUBLE_EQ(set.median(), 1.5);
    SampleSet drained{{7.0}};
    set.merge(std::move(drained));
    EXPECT_EQ(set.size(), 3u);
    set.merge(SampleSet{});  // empty into non-empty is a no-op
    EXPECT_EQ(set.size(), 3u);
    EXPECT_DOUBLE_EQ(set.max(), 7.0);
}

TEST(SampleSet, MergeInvalidatesCachedQuantiles) {
    SampleSet set{{1.0, 2.0, 3.0}};
    EXPECT_DOUBLE_EQ(set.median(), 2.0);  // forces the sorted cache
    set.merge(SampleSet{{100.0}});
    EXPECT_DOUBLE_EQ(set.median(), 2.5);
    EXPECT_DOUBLE_EQ(set.max(), 100.0);
}

TEST(SampleSet, QuantilesInterpolate) {
    SampleSet set;
    set.add_all({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(set.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(set.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(set.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(set.quantile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(set.quantile(0.125), 1.5);
}

TEST(SampleSet, MedianOfSingle) {
    SampleSet set;
    set.add(42.0);
    EXPECT_DOUBLE_EQ(set.median(), 42.0);
}

TEST(SampleSet, StatsAfterIncrementalAdds) {
    SampleSet set;
    set.add(10.0);
    EXPECT_DOUBLE_EQ(set.median(), 10.0);
    set.add(20.0);
    set.add(30.0);
    // Quantile cache must refresh after later adds.
    EXPECT_DOUBLE_EQ(set.median(), 20.0);
    EXPECT_DOUBLE_EQ(set.mean(), 20.0);
    EXPECT_DOUBLE_EQ(set.min(), 10.0);
    EXPECT_DOUBLE_EQ(set.max(), 30.0);
}

TEST(SampleSet, EmptyThrows) {
    const SampleSet set;
    EXPECT_THROW((void)set.mean(), std::invalid_argument);
    EXPECT_THROW((void)set.quantile(0.5), std::invalid_argument);
    EXPECT_THROW((void)set.min(), std::invalid_argument);
}

TEST(SampleSet, QuantileRejectsOutOfRange) {
    SampleSet set;
    set.add(1.0);
    EXPECT_THROW((void)set.quantile(-0.1), std::invalid_argument);
    EXPECT_THROW((void)set.quantile(1.1), std::invalid_argument);
}

TEST(EmpiricalCdf, StepValues) {
    const EmpiricalCdf cdf{{1.0, 2.0, 3.0, 4.0}};
    EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInverse) {
    const EmpiricalCdf cdf{{10.0, 20.0, 30.0, 40.0}};
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
    const EmpiricalCdf cdf{{3.0, 1.0, 2.0, 5.0, 4.0}};
    const auto curve = cdf.curve(0.0, 6.0, 13);
    ASSERT_EQ(curve.size(), 13u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].second, curve[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Histogram, BinAssignment) {
    Histogram hist{0.0, 10.0, 5};
    hist.add(0.5);   // bin 0
    hist.add(3.0);   // bin 1
    hist.add(9.99);  // bin 4
    EXPECT_EQ(hist.bin_count(0), 1u);
    EXPECT_EQ(hist.bin_count(1), 1u);
    EXPECT_EQ(hist.bin_count(4), 1u);
    EXPECT_EQ(hist.total(), 3u);
    EXPECT_DOUBLE_EQ(hist.bin_lo(1), 2.0);
    EXPECT_DOUBLE_EQ(hist.bin_hi(1), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
    Histogram hist{0.0, 10.0, 5};
    hist.add(-100.0);
    hist.add(1e9);
    EXPECT_EQ(hist.bin_count(0), 1u);
    EXPECT_EQ(hist.bin_count(4), 1u);
}

TEST(Histogram, FractionsSumToOne) {
    Histogram hist{0.0, 1.0, 4};
    for (int i = 0; i < 100; ++i) {
        hist.add(i / 100.0);
    }
    double total = 0.0;
    for (std::size_t b = 0; b < hist.bins(); ++b) {
        total += hist.bin_fraction(b);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, RejectsInvalidConstruction) {
    EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
    EXPECT_THROW((Histogram{1.0, 1.0, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail
