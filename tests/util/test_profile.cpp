// Phase profiler: registration, enable gating, accumulation, snapshot
// folding, and the JSON report shape.
#include "util/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

namespace swarmavail::prof {
namespace {

// The profiler is process-global; each test resets the accumulators (phase
// registrations persist, which is the intended call-site caching model).

std::uint64_t calls_of(const std::vector<PhaseTotal>& phases, const std::string& name) {
    for (const auto& phase : phases) {
        if (phase.name == name) {
            return phase.calls;
        }
    }
    return 0;
}

TEST(Profiler, RegisterPhaseIsIdempotent) {
    const std::size_t a = Profiler::register_phase("test.phase_a");
    EXPECT_EQ(Profiler::register_phase("test.phase_a"), a);
    const std::size_t b = Profiler::register_phase("test.phase_b");
    EXPECT_NE(a, b);
}

TEST(Profiler, DisabledScopesRecordNothing) {
    Profiler::reset();
    Profiler::set_enabled(false);
    const std::size_t id = Profiler::register_phase("test.disabled");
    for (int i = 0; i < 10; ++i) {
        const ProfScope scope{id};
    }
    EXPECT_EQ(calls_of(Profiler::snapshot(), "test.disabled"), 0u);
}

TEST(Profiler, EnabledScopesAccumulateCallsAndTime) {
    Profiler::reset();
    Profiler::set_enabled(true);
    const std::size_t id = Profiler::register_phase("test.enabled");
    for (int i = 0; i < 25; ++i) {
        const ProfScope scope{id};
    }
    Profiler::set_enabled(false);
    const auto phases = Profiler::snapshot();
    EXPECT_EQ(calls_of(phases, "test.enabled"), 25u);
    for (const auto& phase : phases) {
        EXPECT_GE(phase.seconds, 0.0) << phase.name;
    }
}

TEST(Profiler, MacroScopesAccumulateUnderTheirName) {
    Profiler::reset();
    Profiler::set_enabled(true);
    for (int i = 0; i < 3; ++i) {
        SWARMAVAIL_PROF_SCOPE("test.macro_scope");
    }
    Profiler::set_enabled(false);
#if defined(SWARMAVAIL_PROFILING_DISABLED)
    EXPECT_EQ(calls_of(Profiler::snapshot(), "test.macro_scope"), 0u);
#else
    EXPECT_EQ(calls_of(Profiler::snapshot(), "test.macro_scope"), 3u);
#endif
}

TEST(Profiler, FoldsAcrossThreads) {
    Profiler::reset();
    Profiler::set_enabled(true);
    const std::size_t id = Profiler::register_phase("test.threads");
    auto work = [id] {
        for (int i = 0; i < 100; ++i) {
            const ProfScope scope{id};
        }
    };
    std::thread t1{work};
    std::thread t2{work};
    work();
    t1.join();
    t2.join();
    Profiler::set_enabled(false);
    EXPECT_EQ(calls_of(Profiler::snapshot(), "test.threads"), 300u);
}

TEST(Profiler, ResetZeroesAccumulatorsButKeepsNames) {
    Profiler::set_enabled(true);
    const std::size_t id = Profiler::register_phase("test.reset");
    { const ProfScope scope{id}; }
    Profiler::set_enabled(false);
    EXPECT_EQ(calls_of(Profiler::snapshot(), "test.reset"), 1u);
    Profiler::reset();
    EXPECT_EQ(calls_of(Profiler::snapshot(), "test.reset"), 0u);
    EXPECT_EQ(Profiler::register_phase("test.reset"), id);
}

TEST(Profiler, WriteJsonListsEveryRegisteredPhase) {
    Profiler::reset();
    Profiler::set_enabled(true);
    const std::size_t id = Profiler::register_phase("test.json");
    { const ProfScope scope{id}; }
    Profiler::set_enabled(false);
    std::ostringstream os;
    Profiler::write_json(os);
    const std::string json = os.str();
    EXPECT_EQ(json.find("{\"phases\":["), 0u);
    EXPECT_NE(json.find("\"name\":\"test.json\",\"calls\":1"), std::string::npos);
}

}  // namespace
}  // namespace swarmavail::prof
