#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/stats.hpp"

namespace swarmavail {
namespace {

TEST(Rng, SameSeedSameStream) {
    Rng a{123};
    Rng b{123};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
    Rng a{1};
    Rng b{2};
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndVariance) {
    Rng rng{11};
    StreamingStats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(rng.uniform());
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng{13};
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformRangeRejectsEmptyInterval) {
    Rng rng{13};
    EXPECT_THROW((void)rng.uniform(2.0, 2.0), std::invalid_argument);
    EXPECT_THROW((void)rng.uniform(3.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversAllValues) {
    Rng rng{17};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_index(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexRejectsZero) {
    Rng rng{17};
    EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatches) {
    Rng rng{19};
    StreamingStats stats;
    for (int i = 0; i < 200000; ++i) {
        stats.add(rng.exponential_mean(42.0));
    }
    EXPECT_NEAR(stats.mean(), 42.0, 0.5);
    // Exponential: stddev == mean.
    EXPECT_NEAR(stats.stddev(), 42.0, 1.0);
}

TEST(Rng, ExponentialRateIsReciprocalMean) {
    Rng rng{23};
    StreamingStats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(rng.exponential_rate(0.25));
    }
    EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositive) {
    Rng rng{23};
    EXPECT_THROW((void)rng.exponential_mean(0.0), std::invalid_argument);
    EXPECT_THROW((void)rng.exponential_rate(-1.0), std::invalid_argument);
}

TEST(Rng, PoissonSmallMean) {
    Rng rng{29};
    StreamingStats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(static_cast<double>(rng.poisson(3.5)));
    }
    EXPECT_NEAR(stats.mean(), 3.5, 0.05);
    EXPECT_NEAR(stats.variance(), 3.5, 0.15);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
    Rng rng{31};
    StreamingStats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(static_cast<double>(rng.poisson(200.0)));
    }
    EXPECT_NEAR(stats.mean(), 200.0, 1.0);
    EXPECT_NEAR(stats.stddev(), std::sqrt(200.0), 0.5);
}

TEST(Rng, PoissonZeroMeanIsZero) {
    Rng rng{31};
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng{37};
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        hits += rng.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateCases) {
    Rng rng{37};
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, ParetoSupportAndMedian) {
    Rng rng{41};
    StreamingStats stats;
    std::vector<double> values;
    for (int i = 0; i < 100000; ++i) {
        const double v = rng.pareto(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        values.push_back(v);
    }
    // Median of Pareto(xm, a) is xm * 2^{1/a}.
    std::nth_element(values.begin(), values.begin() + values.size() / 2, values.end());
    EXPECT_NEAR(values[values.size() / 2], 2.0 * std::pow(2.0, 1.0 / 3.0), 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng parent{43};
    Rng child = parent.fork();
    // The child stream should not simply replay the parent.
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent() == child()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST(SampleDiscrete, RespectsWeights) {
    Rng rng{47};
    const std::vector<double> weights{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        ++counts[sample_discrete(rng, weights)];
    }
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(SampleDiscrete, ZeroWeightNeverSampled) {
    Rng rng{53};
    const std::vector<double> weights{0.0, 1.0};
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(sample_discrete(rng, weights), 1u);
    }
}

TEST(SampleDiscrete, RejectsInvalidWeights) {
    Rng rng{53};
    EXPECT_THROW((void)sample_discrete(rng, {}), std::invalid_argument);
    EXPECT_THROW((void)sample_discrete(rng, {0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW((void)sample_discrete(rng, {-1.0, 2.0}), std::invalid_argument);
}

TEST(ZipfDistribution, PmfSumsToOne) {
    const ZipfDistribution zipf{50, 1.2};
    double total = 0.0;
    for (std::size_t k = 1; k <= 50; ++k) {
        total += zipf.pmf(k);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfDistribution, PmfIsDecreasing) {
    const ZipfDistribution zipf{20, 0.8};
    for (std::size_t k = 2; k <= 20; ++k) {
        EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1));
    }
}

TEST(ZipfDistribution, ZeroExponentIsUniform) {
    const ZipfDistribution zipf{10, 0.0};
    for (std::size_t k = 1; k <= 10; ++k) {
        EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-12);
    }
}

TEST(ZipfDistribution, SampleFrequenciesMatchPmf) {
    Rng rng{59};
    const ZipfDistribution zipf{5, 1.0};
    std::vector<int> counts(6, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        ++counts[zipf.sample(rng)];
    }
    for (std::size_t k = 1; k <= 5; ++k) {
        EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.pmf(k), 0.01);
    }
}

TEST(ZipfDistribution, RejectsInvalidParameters) {
    EXPECT_THROW((ZipfDistribution{0, 1.0}), std::invalid_argument);
    EXPECT_THROW((ZipfDistribution{5, -0.1}), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail
