#include "sim/availability_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/availability.hpp"
#include "model/download_time.hpp"

namespace swarmavail::sim {
namespace {

model::SwarmParams base_params() {
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

AvailabilitySimConfig base_config() {
    AvailabilitySimConfig config;
    config.params = base_params();
    config.horizon = 2.0e6;
    config.seed = 5;
    return config;
}

TEST(AvailabilitySim, ConservationOfPeers) {
    auto config = base_config();
    config.patient_peers = false;
    const auto result = run_availability_sim(config);
    // Every arrival is served, lost, or still in flight at the horizon.
    EXPECT_GE(result.arrivals, result.served + result.lost);
    EXPECT_GT(result.served, 0u);
    EXPECT_GT(result.lost, 0u);
}

TEST(AvailabilitySim, ImpatientLossMatchesEquation10) {
    auto config = base_config();
    config.patient_peers = false;
    config.horizon = 4.0e6;
    const auto result = run_availability_sim(config);
    const auto model = model::availability_impatient(config.params);
    const double simulated =
        static_cast<double>(result.lost) / static_cast<double>(result.arrivals);
    EXPECT_NEAR(simulated, model.unavailability, 0.05 * model.unavailability + 0.01);
}

TEST(AvailabilitySim, BusyPeriodsMatchEquation9) {
    auto config = base_config();
    config.patient_peers = false;
    config.horizon = 4.0e6;
    const auto result = run_availability_sim(config);
    const auto model = model::mixed_busy_period(config.params);
    ASSERT_GT(result.busy_periods.count(), 50u);
    EXPECT_NEAR(result.busy_periods.mean(), model.value,
                6.0 * result.busy_periods.ci95_halfwidth());
}

TEST(AvailabilitySim, IdlePeriodsAverageOneOverR) {
    auto config = base_config();
    config.patient_peers = false;
    const auto result = run_availability_sim(config);
    ASSERT_GT(result.idle_periods.count(), 30u);
    EXPECT_NEAR(result.idle_periods.mean(), 900.0,
                6.0 * result.idle_periods.ci95_halfwidth());
}

TEST(AvailabilitySim, PatientDownloadTimesMatchEquation11) {
    auto config = base_config();
    config.patient_peers = true;
    config.horizon = 4.0e6;
    const auto result = run_availability_sim(config);
    const auto model = model::download_time_patient(config.params);
    ASSERT_GT(result.download_times.count(), 1000u);
    EXPECT_NEAR(result.download_times.mean(), model.download_time,
                0.12 * model.download_time);
}

TEST(AvailabilitySim, PatientPeersAreNeverLost) {
    auto config = base_config();
    config.patient_peers = true;
    const auto result = run_availability_sim(config);
    EXPECT_EQ(result.lost, 0u);
}

TEST(AvailabilitySim, WaitingOnlyWhenUnavailable) {
    auto config = base_config();
    config.patient_peers = true;
    config.params.publisher_arrival_rate = 0.05;  // highly available
    config.params.publisher_residence = 5000.0;
    const auto result = run_availability_sim(config);
    EXPECT_LT(result.waiting_times.mean(), 1.0);
    EXPECT_NEAR(result.download_times.mean(), 80.0, 8.0);
}

TEST(AvailabilitySim, HigherThresholdShortensBusyPeriods) {
    auto config = base_config();
    config.patient_peers = false;
    auto low = config;
    low.coverage_threshold = 1;
    auto high = config;
    high.coverage_threshold = 8;
    const auto result_low = run_availability_sim(low);
    const auto result_high = run_availability_sim(high);
    EXPECT_LT(result_high.busy_periods.mean(), result_low.busy_periods.mean());
    EXPECT_GT(result_high.unavailable_time_fraction,
              result_low.unavailable_time_fraction);
}

TEST(AvailabilitySim, LingeringExtendsBusyPeriods) {
    auto config = base_config();
    config.patient_peers = false;
    auto lingering = config;
    lingering.linger_time = 200.0;
    const auto plain = run_availability_sim(config);
    const auto with_linger = run_availability_sim(lingering);
    EXPECT_GT(with_linger.busy_periods.mean(), plain.busy_periods.mean());
    EXPECT_LT(with_linger.arrival_unavailability, plain.arrival_unavailability);
}

TEST(AvailabilitySim, SingleOnOffPublisherDutyCycle) {
    auto config = base_config();
    config.publisher_mode = PublisherMode::kSingleOnOff;
    config.patient_peers = false;
    config.params.peer_arrival_rate = 1e-6;  // no peer support
    config.horizon = 4.0e6;
    const auto result = run_availability_sim(config);
    // Availability equals the publisher duty cycle u/(u + 1/r) = 0.25.
    EXPECT_NEAR(result.unavailable_time_fraction, 0.75, 0.03);
}

TEST(AvailabilitySim, BundlingReducesUnavailability) {
    auto config = base_config();
    config.patient_peers = false;
    const auto single = run_availability_sim(config);
    auto bundled = config;
    bundled.params = model::make_bundle(config.params, 3,
                                        model::PublisherScaling::kConstant);
    const auto bundle = run_availability_sim(bundled);
    EXPECT_LT(bundle.arrival_unavailability, single.arrival_unavailability);
}

TEST(AvailabilitySim, DeterministicForFixedSeed) {
    const auto a = run_availability_sim(base_config());
    const auto b = run_availability_sim(base_config());
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.served, b.served);
    EXPECT_DOUBLE_EQ(a.download_times.mean(), b.download_times.mean());
}

TEST(AvailabilitySim, DifferentSeedsDiffer) {
    auto config = base_config();
    config.seed = 6;
    const auto a = run_availability_sim(base_config());
    const auto b = run_availability_sim(config);
    EXPECT_NE(a.arrivals, b.arrivals);
}

TEST(AvailabilitySim, RejectsInvalidConfig) {
    auto config = base_config();
    config.coverage_threshold = 0;
    EXPECT_THROW((void)run_availability_sim(config), std::invalid_argument);
    config = base_config();
    config.horizon = 0.0;
    EXPECT_THROW((void)run_availability_sim(config), std::invalid_argument);
    config = base_config();
    config.linger_time = -1.0;
    EXPECT_THROW((void)run_availability_sim(config), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::sim
