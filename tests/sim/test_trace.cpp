// Structured event tracer: ring-buffer flushing, runtime gating, the
// JSONL/CSV serialization round-trips (bit-exact doubles), annotation
// escaping, and the CheckFailure routing helper.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace swarmavail::sim {
namespace {

std::vector<TraceRecord> gnarly_records() {
    return {
        {0.0, TraceKind::kPeerArrival, 0, 1, 0.0, 0.0},
        {0.1, TraceKind::kPeerCompletion, 0, 2, 1.0 / 3.0, 2.0 / 7.0},
        {1e-308, TraceKind::kPublisherUp, 0, 3, 1e308, -1e-17},
        {123456.789012345, TraceKind::kAvailabilityEnd, 0, 0, 98765.4321098765, 12.0},
        {std::nextafter(1.0, 2.0), TraceKind::kTransferStart, 0,
         std::numeric_limits<std::uint64_t>::max(), -0.0, 6.62607015e-34},
        {42.0, TraceKind::kCustom, 0, 7, std::numeric_limits<double>::epsilon(), 3.0},
    };
}

TEST(TraceKindNames, RoundTripEveryKind) {
    const TraceKind kinds[] = {
        TraceKind::kPeerArrival,   TraceKind::kPeerCompletion,
        TraceKind::kPeerLost,      TraceKind::kPeerStranded,
        TraceKind::kPublisherUp,   TraceKind::kPublisherDown,
        TraceKind::kAvailabilityBegin, TraceKind::kAvailabilityEnd,
        TraceKind::kTransferStart, TraceKind::kTransferComplete,
        TraceKind::kCustom,
    };
    for (TraceKind kind : kinds) {
        const std::string name = trace_kind_name(kind);
        EXPECT_NE(name, "unknown");
        TraceKind parsed = TraceKind::kCustom;
        ASSERT_TRUE(trace_kind_from_name(name, parsed)) << name;
        EXPECT_EQ(parsed, kind);
    }
    TraceKind out = TraceKind::kCustom;
    EXPECT_FALSE(trace_kind_from_name("nonsense", out));
}

TEST(Tracer, DisabledRecordsNothing) {
    MemoryTraceSink sink;
    Tracer tracer{sink};
    EXPECT_FALSE(tracer.enabled());
    tracer.record(TraceKind::kPeerArrival, 1.0, 5);
    tracer.flush();
    EXPECT_TRUE(sink.records().empty());
    EXPECT_EQ(tracer.records_emitted(), 0u);
}

TEST(Tracer, RingBufferFlushesWhenFull) {
    MemoryTraceSink sink;
    Tracer tracer{sink, 4};
    tracer.set_enabled(true);
    for (int i = 0; i < 10; ++i) {
        tracer.record(TraceKind::kCustom, static_cast<double>(i), i);
    }
    // Two full buffers flushed automatically; two records still buffered.
    EXPECT_EQ(sink.records().size(), 8u);
    tracer.flush();
    ASSERT_EQ(sink.records().size(), 10u);
    EXPECT_EQ(tracer.records_emitted(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(sink.records()[static_cast<std::size_t>(i)].entity,
                  static_cast<std::uint64_t>(i));
    }
}

TEST(Tracer, DestructorFlushes) {
    MemoryTraceSink sink;
    {
        Tracer tracer{sink, 100};
        tracer.set_enabled(true);
        tracer.record(TraceKind::kPeerLost, 2.5, 9);
    }
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_EQ(sink.records()[0], (TraceRecord{2.5, TraceKind::kPeerLost, 0, 9, 0.0, 0.0}));
}

TEST(Tracer, AnnotationsBypassTheGateAndKeepOrder) {
    MemoryTraceSink sink;
    Tracer tracer{sink, 100};
    tracer.set_enabled(true);
    tracer.record(TraceKind::kCustom, 1.0);
    // The annotation must flush the buffered record first so the sink sees
    // emission order, and must work even when tracing is disabled.
    tracer.set_enabled(false);
    tracer.annotate(1.5, "diagnostic");
    EXPECT_EQ(sink.records().size(), 1u);
    ASSERT_EQ(sink.annotations().size(), 1u);
    EXPECT_EQ(sink.annotations()[0].first, 1.5);
    EXPECT_EQ(sink.annotations()[0].second, "diagnostic");
}

TEST(Tracer, RejectsZeroCapacity) {
    MemoryTraceSink sink;
    EXPECT_THROW((Tracer{sink, 0}), std::invalid_argument);
}

TEST(JsonlTraceSink, RoundTripsRecordsBitExactly) {
    std::ostringstream os;
    {
        JsonlTraceSink sink{os};
        Tracer tracer{sink, 2};  // small buffer: exercises multiple writes
        tracer.set_enabled(true);
        for (const TraceRecord& r : gnarly_records()) {
            tracer.record(r.kind, r.time, r.entity, r.a, r.b);
        }
        tracer.annotate(7.25, "note with \"quotes\", commas,\nnewlines\tand \x01 ctrl");
    }
    std::istringstream in{os.str()};
    const ParsedTrace parsed = read_trace_jsonl(in);
    EXPECT_EQ(parsed.records, gnarly_records());
    ASSERT_EQ(parsed.annotations.size(), 1u);
    EXPECT_EQ(parsed.annotations[0].time, 7.25);
    EXPECT_EQ(parsed.annotations[0].text,
              "note with \"quotes\", commas,\nnewlines\tand \x01 ctrl");
}

TEST(CsvTraceSink, RoundTripsRecordsBitExactly) {
    std::ostringstream os;
    {
        CsvTraceSink sink{os};
        Tracer tracer{sink};
        tracer.set_enabled(true);
        for (const TraceRecord& r : gnarly_records()) {
            tracer.record(r.kind, r.time, r.entity, r.a, r.b);
        }
        tracer.annotate(3.5, "cells, with \"quotes\"");
    }
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("time,kind,entity,a,b\n", 0), 0u) << text;
    std::istringstream in{text};
    const ParsedTrace parsed = read_trace_csv(in);
    EXPECT_EQ(parsed.records, gnarly_records());
    ASSERT_EQ(parsed.annotations.size(), 1u);
    EXPECT_EQ(parsed.annotations[0].text, "cells, with \"quotes\"");
}

TEST(TraceParsers, RejectMalformedInput) {
    std::istringstream bad_json{"{\"t\":1.0,\"kind\":\"bogus\",\"entity\":0,"
                                "\"a\":0,\"b\":0}"};
    EXPECT_THROW((void)read_trace_jsonl(bad_json), std::invalid_argument);
    std::istringstream truncated{"{\"t\":1.0"};
    EXPECT_THROW((void)read_trace_jsonl(truncated), std::invalid_argument);
    std::istringstream no_header{"1.0,custom,0,0,0"};
    EXPECT_THROW((void)read_trace_csv(no_header), std::invalid_argument);
    std::istringstream empty{""};
    EXPECT_THROW((void)read_trace_csv(empty), std::invalid_argument);
}

TEST(TraceCheckFailure, RoutesDiagnosticsWithSimTimeAndContext) {
    MemoryTraceSink sink;
    Tracer tracer{sink};
    const CheckFailure failure{"formatted", "sim/file.cpp", 42, "count went negative"};
    trace_check_failure(&tracer, 123.5, failure);
    ASSERT_EQ(sink.annotations().size(), 1u);
    EXPECT_EQ(sink.annotations()[0].first, 123.5);
    const std::string& text = sink.annotations()[0].second;
    EXPECT_NE(text.find("sim/file.cpp:42"), std::string::npos) << text;
    EXPECT_NE(text.find("count went negative"), std::string::npos) << text;
    // Null tracer: no-op, so engine call sites stay unconditional.
    trace_check_failure(nullptr, 1.0, failure);
}

}  // namespace
}  // namespace swarmavail::sim
