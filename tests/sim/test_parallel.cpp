// Parallel replication engine: executor unit tests plus the determinism
// suite -- serial (ParallelPolicy{1}) and multi-threaded runs of every
// replication harness must produce bit-identical experiment statistics.
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/availability_sim.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/metrics.hpp"
#include "util/random.hpp"

namespace swarmavail::sim {
namespace {

// ---- executor ----------------------------------------------------------

TEST(Parallel, CoversEveryIndexExactlyOnce) {
    Parallel pool{4};
    EXPECT_EQ(pool.threads(), 4u);
    std::vector<int> hits(257, 0);
    pool.for_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i], 1) << "index " << i;
    }
}

TEST(Parallel, ZeroAndSingleIndexRanges) {
    Parallel pool{3};
    std::atomic<int> calls{0};
    pool.for_index(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    pool.for_index(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(Parallel, PoolIsReusableAcrossCalls) {
    Parallel pool{2};
    for (int round = 0; round < 3; ++round) {
        std::vector<int> hits(50, 0);
        pool.for_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
        for (int h : hits) {
            EXPECT_EQ(h, 1);
        }
    }
}

TEST(Parallel, PropagatesExceptionsAfterCompletingTheRange) {
    Parallel pool{4};
    std::vector<int> hits(64, 0);
    EXPECT_THROW(pool.for_index(hits.size(),
                                [&](std::size_t i) {
                                    ++hits[i];
                                    if (i == 13) {
                                        throw std::runtime_error("replication failed");
                                    }
                                }),
                 std::runtime_error);
    // Every index still ran: one failed replication must not silently drop
    // the others (their result slots stay consistent).
    for (int h : hits) {
        EXPECT_EQ(h, 1);
    }
}

TEST(Parallel, SerialPoolPropagatesImmediately) {
    Parallel pool{1};
    EXPECT_EQ(pool.threads(), 1u);
    EXPECT_THROW(
        pool.for_index(4, [](std::size_t) { throw std::invalid_argument("boom"); }),
        std::invalid_argument);
}

TEST(Parallel, RejectsInvalidArguments) {
    EXPECT_THROW(Parallel{0}, std::invalid_argument);
    Parallel pool{2};
    EXPECT_THROW(pool.for_index(1, nullptr), std::invalid_argument);
    EXPECT_THROW(Parallel::for_index(1, ParallelPolicy{2}, nullptr),
                 std::invalid_argument);
}

TEST(ParallelPolicy, ExplicitCountWins) {
    EXPECT_EQ(ParallelPolicy{3}.resolve(), 3u);
    EXPECT_EQ(ParallelPolicy::serial().resolve(), 1u);
}

TEST(ParallelPolicy, EnvVarOverridesAuto) {
    ASSERT_EQ(setenv("SWARMAVAIL_THREADS", "5", 1), 0);
    EXPECT_EQ(ParallelPolicy{}.resolve(), 5u);
    // Explicit thread counts are not overridden by the environment.
    EXPECT_EQ(ParallelPolicy{2}.resolve(), 2u);
    // Garbage or non-positive values fall back to auto (>= 1).
    ASSERT_EQ(setenv("SWARMAVAIL_THREADS", "zero", 1), 0);
    EXPECT_GE(ParallelPolicy{}.resolve(), 1u);
    ASSERT_EQ(setenv("SWARMAVAIL_THREADS", "0", 1), 0);
    EXPECT_GE(ParallelPolicy{}.resolve(), 1u);
    ASSERT_EQ(unsetenv("SWARMAVAIL_THREADS"), 0);
    EXPECT_GE(ParallelPolicy{}.resolve(), 1u);
}

// ---- determinism suite -------------------------------------------------
//
// Each workload runs once with ParallelPolicy{1} and once with
// ParallelPolicy{4}; the pooled samples, run-level stats, and best-point
// selection must match bit for bit (EXPECT_EQ on doubles, not EXPECT_NEAR).

void expect_cells_identical(const ExperimentCell& serial, const ExperimentCell& parallel) {
    EXPECT_EQ(serial.replications, parallel.replications);
    EXPECT_EQ(serial.samples.samples(), parallel.samples.samples());
    EXPECT_EQ(serial.run_means.count(), parallel.run_means.count());
    EXPECT_EQ(serial.run_means.mean(), parallel.run_means.mean());
    EXPECT_EQ(serial.run_means.variance(), parallel.run_means.variance());
    EXPECT_EQ(serial.run_means.min(), parallel.run_means.min());
    EXPECT_EQ(serial.run_means.max(), parallel.run_means.max());
    EXPECT_EQ(serial.ci95(), parallel.ci95());
    if (!serial.samples.empty()) {
        EXPECT_EQ(serial.mean(), parallel.mean());
        EXPECT_EQ(serial.samples.quantile(0.9), parallel.samples.quantile(0.9));
    }
}

std::vector<double> availability_body(std::uint64_t seed) {
    AvailabilitySimConfig config;
    config.params.peer_arrival_rate = 1.0 / 60.0;
    config.params.content_size = 80.0;
    config.params.download_rate = 1.0;
    config.params.publisher_arrival_rate = 1.0 / 900.0;
    config.params.publisher_residence = 300.0;
    config.horizon = 20000.0;
    config.seed = seed;
    const auto result = run_availability_sim(config);
    std::vector<double> samples;
    if (result.download_times.count() > 0) {
        samples.push_back(result.download_times.mean());
    }
    samples.push_back(result.unavailable_time_fraction);
    return samples;
}

swarm::SwarmSimConfig small_swarm_config() {
    swarm::SwarmSimConfig config;
    config.bundle_size = 2;
    config.pieces_per_file = 4;
    config.peer_arrival_rate = 1.0 / 30.0;
    config.peer_capacity =
        std::make_shared<swarm::HomogeneousCapacity>(100.0 * swarm::kKBps);
    config.publisher_capacity = 200.0 * swarm::kKBps;
    config.horizon = 900.0;
    return config;
}

std::vector<double> swarm_body(std::uint64_t seed) {
    auto config = small_swarm_config();
    config.seed = seed;
    auto result = swarm::run_swarm_sim(config);
    return result.completion_times;
}

std::vector<double> busy_period_body(std::uint64_t seed) {
    Rng rng{seed};
    std::vector<double> samples;
    samples.reserve(20);
    for (int i = 0; i < 20; ++i) {
        samples.push_back(sample_busy_period(
            rng, 1.0 / 90.0, [](Rng& r) { return r.exponential_mean(300.0); },
            [](Rng& r) { return r.exponential_mean(120.0); }));
    }
    return samples;
}

TEST(ParallelDeterminism, AvailabilitySimReplications) {
    const auto serial =
        run_replications("avail", availability_body, 8, 100, ParallelPolicy{1});
    const auto parallel =
        run_replications("avail", availability_body, 8, 100, ParallelPolicy{4});
    expect_cells_identical(serial, parallel);
}

TEST(ParallelDeterminism, SwarmSimReplications) {
    const auto serial = run_replications("swarm", swarm_body, 6, 40, ParallelPolicy{1});
    const auto parallel = run_replications("swarm", swarm_body, 6, 40, ParallelPolicy{4});
    expect_cells_identical(serial, parallel);
}

TEST(ParallelDeterminism, MonteCarloBusyPeriodReplications) {
    const auto serial = run_replications("mc", busy_period_body, 10, 7, ParallelPolicy{1});
    const auto parallel =
        run_replications("mc", busy_period_body, 10, 7, ParallelPolicy{4});
    expect_cells_identical(serial, parallel);
}

TEST(ParallelDeterminism, SweepAndBestPointSelection) {
    const std::vector<double> values{1.0, 2.0, 3.0};
    const auto body = [](double value, std::uint64_t seed) {
        Rng rng{seed};
        std::vector<double> samples;
        for (int i = 0; i < 50; ++i) {
            samples.push_back(value + rng.uniform(-0.5, 0.5));
        }
        return samples;
    };
    const auto serial = run_sweep(values, body, 4, 900, ParallelPolicy{1});
    const auto parallel = run_sweep(values, body, 4, 900, ParallelPolicy{4});
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].value, parallel[i].value);
        expect_cells_identical(serial[i].cell, parallel[i].cell);
    }
    EXPECT_EQ(best_point(serial).value, best_point(parallel).value);
}

TEST(ParallelDeterminism, BestPointTiesBreakIdentically) {
    // Two cells with exactly equal means: both policies must pick the
    // earlier value (the documented tie-break).
    const auto body = [](double, std::uint64_t) { return std::vector<double>{1.0}; };
    const auto serial = run_sweep({5.0, 6.0}, body, 3, 0, ParallelPolicy{1});
    const auto parallel = run_sweep({5.0, 6.0}, body, 3, 0, ParallelPolicy{4});
    EXPECT_EQ(best_point(serial).value, 5.0);
    EXPECT_EQ(best_point(parallel).value, 5.0);
}

TEST(ParallelDeterminism, SwarmReplicationHarness) {
    const auto config = small_swarm_config();
    const auto serial = swarm::run_swarm_replications(config, 5, ParallelPolicy{1});
    const auto parallel = swarm::run_swarm_replications(config, 5, ParallelPolicy{4});
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].arrivals, parallel[i].arrivals);
        EXPECT_EQ(serial[i].completions, parallel[i].completions);
        EXPECT_EQ(serial[i].stuck_at_horizon, parallel[i].stuck_at_horizon);
        EXPECT_EQ(serial[i].completion_times, parallel[i].completion_times);
        EXPECT_EQ(serial[i].download_times.count(), parallel[i].download_times.count());
        EXPECT_EQ(serial[i].download_times.mean(), parallel[i].download_times.mean());
        EXPECT_EQ(serial[i].available_fraction, parallel[i].available_fraction);
        EXPECT_EQ(serial[i].last_completion, parallel[i].last_completion);
    }
}

// Merged metrics registries must be bit-identical across thread counts:
// same names in the same registration order, and every counter, gauge, and
// histogram equal bitwise (EXPECT_EQ on doubles).
void expect_registries_identical(const MetricsRegistry& a, const MetricsRegistry& b) {
    ASSERT_EQ(a.names(), b.names());
    for (const std::string& name : a.names()) {
        if (const Counter* ca = a.find_counter(name); ca != nullptr) {
            const Counter* cb = b.find_counter(name);
            ASSERT_NE(cb, nullptr) << name;
            EXPECT_EQ(ca->value(), cb->value()) << name;
        } else if (const Gauge* ga = a.find_gauge(name); ga != nullptr) {
            const Gauge* gb = b.find_gauge(name);
            ASSERT_NE(gb, nullptr) << name;
            EXPECT_EQ(ga->value(), gb->value()) << name;
            EXPECT_EQ(ga->stats().count(), gb->stats().count()) << name;
            EXPECT_EQ(ga->stats().mean(), gb->stats().mean()) << name;
            EXPECT_EQ(ga->stats().variance(), gb->stats().variance()) << name;
        } else {
            const HistogramMetric* ha = a.find_histogram(name);
            const HistogramMetric* hb = b.find_histogram(name);
            ASSERT_NE(ha, nullptr) << name;
            ASSERT_NE(hb, nullptr) << name;
            ASSERT_EQ(ha->bins(), hb->bins()) << name;
            for (std::size_t i = 0; i < ha->bins(); ++i) {
                EXPECT_EQ(ha->bin_count(i), hb->bin_count(i)) << name << " bin " << i;
            }
            EXPECT_EQ(ha->stats().count(), hb->stats().count()) << name;
            EXPECT_EQ(ha->stats().mean(), hb->stats().mean()) << name;
            EXPECT_EQ(ha->stats().variance(), hb->stats().variance()) << name;
            EXPECT_EQ(ha->stats().min(), hb->stats().min()) << name;
            EXPECT_EQ(ha->stats().max(), hb->stats().max()) << name;
        }
    }
}

std::vector<double> availability_metrics_body(std::uint64_t seed,
                                              MetricsRegistry& metrics) {
    AvailabilitySimConfig config;
    config.params.peer_arrival_rate = 1.0 / 60.0;
    config.params.content_size = 80.0;
    config.params.download_rate = 1.0;
    config.params.publisher_arrival_rate = 1.0 / 900.0;
    config.params.publisher_residence = 300.0;
    config.horizon = 20000.0;
    config.seed = seed;
    config.metrics = &metrics;
    const auto result = run_availability_sim(config);
    std::vector<double> samples;
    if (result.download_times.count() > 0) {
        samples.push_back(result.download_times.mean());
    }
    samples.push_back(result.unavailable_time_fraction);
    return samples;
}

TEST(ParallelDeterminism, MetricsReplicationsMergeBitIdentically) {
    MetricsRegistry serial_metrics;
    const auto serial = run_replications("avail", availability_metrics_body, 8, 100,
                                         serial_metrics, ParallelPolicy{1});
    MetricsRegistry parallel_metrics;
    const auto parallel = run_replications("avail", availability_metrics_body, 8, 100,
                                           parallel_metrics, ParallelPolicy{4});
    expect_cells_identical(serial, parallel);
    ASSERT_GT(serial_metrics.size(), 0u);
    EXPECT_GT(serial_metrics.find_counter("avail.arrivals")->value(), 0u);
    expect_registries_identical(serial_metrics, parallel_metrics);
}

TEST(ParallelDeterminism, SwarmReplicationHarnessMergesMetricsBitIdentically) {
    auto serial_config = small_swarm_config();
    MetricsRegistry serial_metrics;
    serial_config.metrics = &serial_metrics;
    const auto serial = swarm::run_swarm_replications(serial_config, 5, ParallelPolicy{1});

    auto parallel_config = small_swarm_config();
    MetricsRegistry parallel_metrics;
    parallel_config.metrics = &parallel_metrics;
    const auto parallel =
        swarm::run_swarm_replications(parallel_config, 5, ParallelPolicy{4});

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].completion_times, parallel[i].completion_times);
    }
    ASSERT_GT(serial_metrics.size(), 0u);
    EXPECT_GT(serial_metrics.find_counter("swarm.arrivals")->value(), 0u);
    expect_registries_identical(serial_metrics, parallel_metrics);
}

TEST(ParallelDeterminism, ThreadCountBeyondReplicationsIsSafe) {
    const auto serial = run_replications("mc", busy_period_body, 3, 1, ParallelPolicy{1});
    const auto oversubscribed =
        run_replications("mc", busy_period_body, 3, 1, ParallelPolicy{16});
    expect_cells_identical(serial, oversubscribed);
}

}  // namespace
}  // namespace swarmavail::sim
