#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>
#include <vector>

namespace swarmavail::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue queue;
    std::vector<int> order;
    queue.schedule_at(3.0, [&] { order.push_back(3); });
    queue.schedule_at(1.0, [&] { order.push_back(1); });
    queue.schedule_at(2.0, [&] { order.push_back(2); });
    while (queue.run_next()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsFifo) {
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
    }
    while (queue.run_next()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
    EventQueue queue;
    bool fired = false;
    const EventId id = queue.schedule_at(1.0, [&] { fired = true; });
    queue.cancel(id);
    while (queue.run_next()) {
    }
    EXPECT_FALSE(fired);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelUnknownIdIsNoOp) {
    EventQueue queue;
    queue.schedule_at(1.0, [] {});
    queue.cancel(9999);
    queue.cancel(0);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, DoubleCancelCountsOnce) {
    EventQueue queue;
    const EventId id = queue.schedule_at(1.0, [] {});
    queue.schedule_at(2.0, [] {});
    queue.cancel(id);
    queue.cancel(id);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
    EventQueue queue;
    std::vector<double> fired;
    for (double t : {1.0, 2.0, 3.0, 4.0}) {
        queue.schedule_at(t, [&fired, t] { fired.push_back(t); });
    }
    queue.run_until(2.5);
    EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
    EXPECT_DOUBLE_EQ(queue.now(), 2.5);
    EXPECT_EQ(queue.size(), 2u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
    EventQueue queue;
    queue.run_until(10.0);
    EXPECT_DOUBLE_EQ(queue.now(), 10.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
    EventQueue queue;
    queue.schedule_at(5.0, [] {});
    queue.run_until(5.0);
    EXPECT_THROW((void)queue.schedule_at(4.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
    EventQueue queue;
    std::vector<double> fired;
    queue.schedule_at(1.0, [&] {
        fired.push_back(queue.now());
        queue.schedule_at(2.0, [&] { fired.push_back(queue.now()); });
    });
    queue.run_until(5.0);
    EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    EventQueue queue;
    const EventId early = queue.schedule_at(1.0, [] {});
    queue.schedule_at(2.0, [] {});
    queue.cancel(early);
    EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
}

TEST(EventQueue, NextTimeEmptyIsNegative) {
    EventQueue queue;
    EXPECT_LT(queue.next_time(), 0.0);
    queue.schedule_at(3.0, [] {});
    EXPECT_DOUBLE_EQ(queue.next_time(), 3.0);
}

TEST(EventQueue, NextTimeIsConstAndNonDestructive) {
    EventQueue queue;
    const EventId early = queue.schedule_at(1.0, [] {});
    queue.schedule_at(2.0, [] {});
    queue.cancel(early);
    // Peeking through a const reference must see past the cancelled head
    // without mutating the queue.
    const EventQueue& view = queue;
    EXPECT_DOUBLE_EQ(view.next_time(), 2.0);
    EXPECT_DOUBLE_EQ(view.next_time(), 2.0);
    EXPECT_EQ(view.size(), 1u);
    EXPECT_TRUE(queue.run_next());
    EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, StaleIdAfterSlotReuseIsNoOp) {
    EventQueue queue;
    const EventId first = queue.schedule_at(1.0, [] {});
    queue.cancel(first);
    // The slot is recycled for the next event, but under a new generation:
    // the stale handle must not cancel the newcomer.
    bool fired = false;
    const EventId second = queue.schedule_at(2.0, [&] { fired = true; });
    EXPECT_NE(first, second);
    queue.cancel(first);
    EXPECT_EQ(queue.size(), 1u);
    while (queue.run_next()) {
    }
    EXPECT_TRUE(fired);
}

TEST(EventQueue, IdsStayUniqueAcrossHeavyReuse) {
    EventQueue queue;
    std::set<EventId> ids;
    int fired = 0;
    for (int round = 0; round < 100; ++round) {
        const EventId keep =
            queue.schedule_at(queue.now() + 1.0, [&fired] { ++fired; });
        const EventId drop = queue.schedule_at(queue.now() + 2.0, [] {});
        EXPECT_TRUE(ids.insert(keep).second);
        EXPECT_TRUE(ids.insert(drop).second);
        queue.cancel(drop);
        EXPECT_TRUE(queue.run_next());
    }
    EXPECT_EQ(fired, 100);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, LargeCaptureCallbacksRun) {
    // Callbacks bigger than the inline buffer fall back to heap storage;
    // both paths must deliver the capture intact.
    EventQueue queue;
    std::array<double, 32> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<double>(i);
    }
    double sum = 0.0;
    queue.schedule_at(1.0, [payload, &sum] {
        for (double v : payload) {
            sum += v;
        }
    });
    queue.schedule_at(2.0, [&sum] { sum += 1000.0; });
    while (queue.run_next()) {
    }
    EXPECT_DOUBLE_EQ(sum, 496.0 + 1000.0);
}

TEST(EventQueue, CancelledCallbackIsReleasedImmediately) {
    // Cancelling must drop the stored callable right away (it may own
    // resources), not wait for the tombstone to surface in the heap.
    EventQueue queue;
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    const EventId id = queue.schedule_at(5.0, [token = std::move(token)] {});
    EXPECT_FALSE(watch.expired());
    queue.cancel(id);
    EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, SizeTracksLiveEvents) {
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    const EventId a = queue.schedule_at(1.0, [] {});
    queue.schedule_at(2.0, [] {});
    EXPECT_EQ(queue.size(), 2u);
    queue.cancel(a);
    EXPECT_EQ(queue.size(), 1u);
    queue.run_next();
    EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace swarmavail::sim
