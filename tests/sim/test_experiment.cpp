#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace swarmavail::sim {
namespace {

TEST(RunReplications, PoolsSamplesAcrossSeeds) {
    const auto cell = run_replications(
        "constant", [](std::uint64_t seed) {
            return std::vector<double>{static_cast<double>(seed)};
        },
        4, 10);
    EXPECT_EQ(cell.replications, 4u);
    EXPECT_EQ(cell.samples.size(), 4u);
    EXPECT_DOUBLE_EQ(cell.mean(), (10.0 + 11.0 + 12.0 + 13.0) / 4.0);
    EXPECT_EQ(cell.label, "constant");
}

TEST(RunReplications, EmptyReplicationsSkipped) {
    const auto cell = run_replications(
        "sparse", [](std::uint64_t seed) {
            return seed % 2 == 0 ? std::vector<double>{1.0} : std::vector<double>{};
        },
        4, 0);
    EXPECT_EQ(cell.samples.size(), 2u);
    EXPECT_EQ(cell.run_means.count(), 2u);
}

TEST(RunReplications, RunLevelCiUsesPerRunMeans) {
    const auto cell = run_replications(
        "two-runs", [](std::uint64_t seed) {
            // Run means 1.0 and 3.0 regardless of within-run spread.
            return seed == 0 ? std::vector<double>{0.5, 1.5}
                             : std::vector<double>{2.5, 3.5};
        },
        2, 0);
    EXPECT_DOUBLE_EQ(cell.run_means.mean(), 2.0);
    EXPECT_GT(cell.ci95(), 0.0);
}

TEST(RunReplications, RejectsInvalidArguments) {
    EXPECT_THROW(
        (void)run_replications("x", [](std::uint64_t) { return std::vector<double>{}; },
                               0, 0),
        std::invalid_argument);
    EXPECT_THROW((void)run_replications("x", nullptr, 1, 0), std::invalid_argument);
}

TEST(RunSweep, OneCellPerValueWithDistinctSeeds) {
    std::vector<std::uint64_t> seeds_seen;
    // The body mutates shared state, so force the serial policy (the
    // default may fan replications out over threads).
    const auto sweep = run_sweep(
        {1.0, 2.0},
        [&seeds_seen](double value, std::uint64_t seed) {
            seeds_seen.push_back(seed);
            return std::vector<double>{value};
        },
        3, 100, ParallelPolicy{1});
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_DOUBLE_EQ(sweep[0].value, 1.0);
    EXPECT_DOUBLE_EQ(sweep[1].cell.mean(), 2.0);
    // Seeds must not repeat across cells.
    std::sort(seeds_seen.begin(), seeds_seen.end());
    EXPECT_TRUE(std::adjacent_find(seeds_seen.begin(), seeds_seen.end()) ==
                seeds_seen.end());
}

TEST(BestPoint, FindsMinimumMean) {
    const auto sweep = run_sweep(
        {3.0, 1.0, 2.0},
        [](double value, std::uint64_t) { return std::vector<double>{value}; }, 2, 0);
    EXPECT_DOUBLE_EQ(best_point(sweep).value, 1.0);
}

TEST(BestPoint, RejectsDegenerateSweeps) {
    EXPECT_THROW((void)best_point({}), std::invalid_argument);
    std::vector<SweepPoint> empty_cell(1);
    EXPECT_THROW((void)best_point(empty_cell), std::invalid_argument);
}

TEST(RunSweep, StochasticBodyConverges) {
    // A noisy body whose true means differ: the sweep must rank correctly
    // with enough replications.
    const auto sweep = run_sweep(
        {10.0, 20.0},
        [](double value, std::uint64_t seed) {
            Rng rng{seed};
            std::vector<double> samples;
            for (int i = 0; i < 200; ++i) {
                samples.push_back(value + rng.uniform(-5.0, 5.0));
            }
            return samples;
        },
        5, 42);
    EXPECT_DOUBLE_EQ(best_point(sweep).value, 10.0);
    EXPECT_NEAR(sweep[0].cell.mean(), 10.0, 0.5);
    EXPECT_LT(sweep[0].cell.ci95(), 1.0);
}

}  // namespace
}  // namespace swarmavail::sim
