#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "util/random.hpp"
#include "util/telemetry.hpp"

namespace swarmavail::sim {
namespace {

TEST(RunReplications, PoolsSamplesAcrossSeeds) {
    const auto cell = run_replications(
        "constant", [](std::uint64_t seed) {
            return std::vector<double>{static_cast<double>(seed)};
        },
        4, 10);
    EXPECT_EQ(cell.replications, 4u);
    EXPECT_EQ(cell.samples.size(), 4u);
    EXPECT_DOUBLE_EQ(cell.mean(), (10.0 + 11.0 + 12.0 + 13.0) / 4.0);
    EXPECT_EQ(cell.label, "constant");
}

TEST(RunReplications, EmptyReplicationsSkipped) {
    const auto cell = run_replications(
        "sparse", [](std::uint64_t seed) {
            return seed % 2 == 0 ? std::vector<double>{1.0} : std::vector<double>{};
        },
        4, 0);
    EXPECT_EQ(cell.samples.size(), 2u);
    EXPECT_EQ(cell.run_means.count(), 2u);
}

TEST(RunReplications, RunLevelCiUsesPerRunMeans) {
    const auto cell = run_replications(
        "two-runs", [](std::uint64_t seed) {
            // Run means 1.0 and 3.0 regardless of within-run spread.
            return seed == 0 ? std::vector<double>{0.5, 1.5}
                             : std::vector<double>{2.5, 3.5};
        },
        2, 0);
    EXPECT_DOUBLE_EQ(cell.run_means.mean(), 2.0);
    EXPECT_GT(cell.ci95(), 0.0);
}

TEST(RunReplications, RejectsInvalidArguments) {
    EXPECT_THROW(
        (void)run_replications("x", [](std::uint64_t) { return std::vector<double>{}; },
                               0, 0),
        std::invalid_argument);
    EXPECT_THROW((void)run_replications("x", nullptr, 1, 0), std::invalid_argument);
}

TEST(RunSweep, OneCellPerValueWithDistinctSeeds) {
    std::vector<std::uint64_t> seeds_seen;
    // The body mutates shared state, so force the serial policy (the
    // default may fan replications out over threads).
    const auto sweep = run_sweep(
        {1.0, 2.0},
        [&seeds_seen](double value, std::uint64_t seed) {
            seeds_seen.push_back(seed);
            return std::vector<double>{value};
        },
        3, 100, ParallelPolicy{1});
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_DOUBLE_EQ(sweep[0].value, 1.0);
    EXPECT_DOUBLE_EQ(sweep[1].cell.mean(), 2.0);
    // Seeds must not repeat across cells.
    std::sort(seeds_seen.begin(), seeds_seen.end());
    EXPECT_TRUE(std::adjacent_find(seeds_seen.begin(), seeds_seen.end()) ==
                seeds_seen.end());
}

TEST(BestPoint, FindsMinimumMean) {
    const auto sweep = run_sweep(
        {3.0, 1.0, 2.0},
        [](double value, std::uint64_t) { return std::vector<double>{value}; }, 2, 0);
    EXPECT_DOUBLE_EQ(best_point(sweep).value, 1.0);
}

TEST(BestPoint, RejectsDegenerateSweeps) {
    EXPECT_THROW((void)best_point({}), std::invalid_argument);
    std::vector<SweepPoint> empty_cell(1);
    EXPECT_THROW((void)best_point(empty_cell), std::invalid_argument);
}

TEST(RunSweep, StochasticBodyConverges) {
    // A noisy body whose true means differ: the sweep must rank correctly
    // with enough replications.
    const auto sweep = run_sweep(
        {10.0, 20.0},
        [](double value, std::uint64_t seed) {
            Rng rng{seed};
            std::vector<double> samples;
            for (int i = 0; i < 200; ++i) {
                samples.push_back(value + rng.uniform(-5.0, 5.0));
            }
            return samples;
        },
        5, 42);
    EXPECT_DOUBLE_EQ(best_point(sweep).value, 10.0);
    EXPECT_NEAR(sweep[0].cell.mean(), 10.0, 0.5);
    EXPECT_LT(sweep[0].cell.ci95(), 1.0);
}

// --- RunControl: telemetry attachment and early stopping -----------------

Replication noisy_body() {
    return [](std::uint64_t seed) {
        Rng rng{seed};
        std::vector<double> samples;
        for (int i = 0; i < 16; ++i) {
            samples.push_back(rng.uniform(0.0, 1.0));
        }
        return samples;
    };
}

void expect_cells_identical(const ExperimentCell& a, const ExperimentCell& b) {
    EXPECT_EQ(a.samples.samples(), b.samples.samples());  // bitwise, in order
    EXPECT_EQ(a.run_means.count(), b.run_means.count());
    EXPECT_EQ(a.run_means.mean(), b.run_means.mean());
    EXPECT_EQ(a.run_means.variance(), b.run_means.variance());
    EXPECT_EQ(a.completed_replications, b.completed_replications);
    EXPECT_EQ(a.stopped_early, b.stopped_early);
}

TEST(RunControl, NoStopRuleIsBitIdenticalToPolicyOverload) {
    // Attaching a telemetry session must not perturb any result, at any
    // thread count — the observer-neutrality half of the RunControl
    // contract. The reference is the plain serial overload.
    const auto reference =
        run_replications("cell", noisy_body(), 12, 500, ParallelPolicy{1});
    for (std::size_t threads : {1u, 2u, 4u}) {
        telemetry::MemoryTelemetryExporter ring;
        telemetry::TelemetryConfig telemetry_config;
        telemetry_config.interval_s = 0.005;
        telemetry_config.exporters.push_back(&ring);
        telemetry::TelemetrySession session{telemetry_config};
        session.start();

        RunControl control;
        control.policy = ParallelPolicy{threads};
        control.telemetry = &session;
        const auto cell = run_replications("cell", noisy_body(), 12, 500, control);
        session.stop();

        expect_cells_identical(cell, reference);
        EXPECT_FALSE(cell.stopped_early);
        EXPECT_EQ(cell.completed_replications, 12u);

        const auto final_snapshot = ring.snapshots().back();
        EXPECT_TRUE(final_snapshot.final_snapshot);
#if !defined(SWARMAVAIL_TELEMETRY_DISABLED)
        // ...and the run is genuinely observable: the counters advanced and
        // the tracker saw one run mean per replication under the cell label.
        // (Under the trace-off preset the engine call sites compile out, so
        // the counters legitimately stay at zero.)
        EXPECT_EQ(session.counters().replications_total.load(), 12u);
        EXPECT_EQ(session.counters().replications_completed.load(), 12u);
        ASSERT_EQ(final_snapshot.tracked.size(), 1u);
        EXPECT_EQ(final_snapshot.tracked[0].name, "cell");
        EXPECT_EQ(final_snapshot.tracked[0].count, 12u);
#endif
    }
}

TEST(RunControl, StopRuleEndsSerialBatchAtDeterministicPrefix) {
    // A constant body has zero CI half-width, so the rule fires the moment
    // min_observations is reached; under the serial policy the survivors
    // are exactly the seed-order prefix.
    std::mutex seen_mutex;
    std::vector<std::uint64_t> seeds_seen;
    RunControl control;
    control.policy = ParallelPolicy{1};
    control.stop_rule = telemetry::StopRule{0.5, 6};
    const auto cell = run_replications(
        "constant",
        [&](std::uint64_t seed) {
            const std::lock_guard<std::mutex> lock(seen_mutex);
            seeds_seen.push_back(seed);
            return std::vector<double>{2.5};
        },
        40, 1000, control);

    EXPECT_TRUE(cell.stopped_early);
    EXPECT_EQ(cell.replications, 40u);
    EXPECT_EQ(cell.completed_replications, 6u);
    EXPECT_EQ(cell.samples.size(), 6u);
    EXPECT_EQ(cell.run_means.count(), 6u);
    EXPECT_EQ(seeds_seen,
              (std::vector<std::uint64_t>{1000, 1001, 1002, 1003, 1004, 1005}));
}

TEST(RunControl, StopRuleThatNeverFiresRunsEverything) {
    RunControl control;
    control.policy = ParallelPolicy{1};
    control.stop_rule = telemetry::StopRule{1.0e-12, 4};  // unreachably tight
    const auto cell = run_replications("noisy", noisy_body(), 10, 77, control);
    EXPECT_FALSE(cell.stopped_early);
    EXPECT_EQ(cell.completed_replications, 10u);
    expect_cells_identical(
        cell, run_replications("noisy", noisy_body(), 10, 77, ParallelPolicy{1}));
}

TEST(RunControl, MetricsOverloadMergesOnlyCompletedReplications) {
    MetricsRegistry merged;
    RunControl control;
    control.policy = ParallelPolicy{1};
    control.stop_rule = telemetry::StopRule{0.5, 5};
    const auto cell = run_replications(
        "metered",
        [](std::uint64_t, MetricsRegistry& metrics) {
            metrics.counter("runs").add(1);
            return std::vector<double>{1.0};
        },
        30, 0, merged, control);
    EXPECT_TRUE(cell.stopped_early);
    EXPECT_EQ(cell.completed_replications, 5u);
    ASSERT_NE(merged.find_counter("runs"), nullptr);
    EXPECT_EQ(merged.find_counter("runs")->value(), 5u);
}

}  // namespace
}  // namespace swarmavail::sim
