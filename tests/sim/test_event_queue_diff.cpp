// Differential test of the calendar/ladder EventQueue against a reference
// binary heap: both are driven through identical randomized
// push/cancel/pop sequences (with heavy same-timestamp ties and slot
// reuse) and must produce bit-identical dispatch orders. The reference is
// an independent re-implementation of the generation-2 contract -- total
// order on (when, scheduling sequence) -- so any divergence in the
// calendar's routing, staging, or rewindow logic shows up as an order or
// clock mismatch here rather than as a silently different simulation.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/audit.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace swarmavail::sim {
namespace {

/// Reference scheduler: a plain binary min-heap over (when, seq) with lazy
/// cancellation, mirroring the generation-2 EventQueue's dispatch contract
/// with none of the calendar machinery.
class ReferenceHeapQueue {
 public:
    std::uint64_t push(SimTime when) {
        const std::uint64_t tag = next_seq_++;
        heap_.push_back({when, tag});
        std::push_heap(heap_.begin(), heap_.end(), later);
        cancelled_.push_back(false);
        return tag;
    }

    void cancel(std::uint64_t tag) { cancelled_[tag] = true; }

    /// Pops the earliest live entry; returns {when, tag}. Requires a live
    /// entry to exist.
    std::pair<SimTime, std::uint64_t> pop() {
        for (;;) {
            std::pop_heap(heap_.begin(), heap_.end(), later);
            const Entry entry = heap_.back();
            heap_.pop_back();
            if (!cancelled_[entry.tag]) {
                return {entry.when, entry.tag};
            }
        }
    }

    [[nodiscard]] std::size_t live() const {
        std::size_t count = 0;
        for (const Entry& entry : heap_) {
            count += cancelled_[entry.tag] ? 0U : 1U;
        }
        return count;
    }

 private:
    struct Entry {
        SimTime when;
        std::uint64_t tag;
    };

    // Heap comparator for a min-heap: `a` is dispatched after `b` when it
    // has a later time, or an equal time and a later scheduling sequence.
    static bool later(const Entry& a, const Entry& b) {
        return a.when > b.when || (a.when == b.when && a.tag > b.tag);
    }

    std::vector<Entry> heap_;
    std::vector<bool> cancelled_;  // indexed by tag
    std::uint64_t next_seq_ = 0;
};

struct DifferentialRunConfig {
    std::uint64_t seed = 0;
    std::size_t ops = 4000;
    bool audit = false;
    /// Times are drawn from a grid of this many distinct offsets, so small
    /// values force heavy same-timestamp ties.
    std::uint64_t time_grid = 16;
    /// Far-future deltas (overflow-ladder residents) get this multiplier.
    double churn_span = 512.0;
};

/// Drives the real queue and the reference heap through one randomized
/// sequence and asserts bit-identical dispatch order and clocks.
void run_differential(const DifferentialRunConfig& config) {
    EventQueue queue;
    queue.set_audit(config.audit);
    ReferenceHeapQueue reference;

    Rng rng{config.seed};
    // Live handles: parallel arrays of real-queue ids and reference tags.
    std::vector<EventId> ids;
    std::vector<std::uint64_t> tags;
    std::vector<std::uint64_t> dispatched_tags;
    std::vector<std::uint64_t> fired_tags;

    const auto schedule_one = [&] {
        const double grid_step =
            static_cast<double>(rng.uniform_index(config.time_grid)) /
            static_cast<double>(config.time_grid);
        const bool churn = (rng() & 7U) == 0;
        const SimTime when =
            queue.now() + grid_step * (churn ? config.churn_span : 1.0);
        const std::uint64_t tag = reference.push(when);
        ids.push_back(queue.schedule_at(when, [&fired_tags, tag] {
            fired_tags.push_back(tag);
        }));
        tags.push_back(tag);
    };

    for (std::size_t op = 0; op < config.ops; ++op) {
        const std::uint64_t roll = rng.uniform_index(10);
        if (roll < 5 || queue.empty()) {
            schedule_one();
        } else if (roll < 7 && !ids.empty()) {
            const auto victim = static_cast<std::size_t>(rng.uniform_index(ids.size()));
            queue.cancel(ids[victim]);
            reference.cancel(tags[victim]);
            ids[victim] = ids.back();
            ids.pop_back();
            tags[victim] = tags.back();
            tags.pop_back();
        } else {
            const auto [expect_when, expect_tag] = reference.pop();
            ASSERT_TRUE(queue.run_next());
            ASSERT_EQ(fired_tags.size(), dispatched_tags.size() + 1);
            dispatched_tags.push_back(fired_tags.back());
            ASSERT_EQ(fired_tags.back(), expect_tag)
                << "dispatch order diverged at op " << op;
            ASSERT_EQ(queue.now(), expect_when)
                << "clock diverged at op " << op;
            const auto done = std::find(tags.begin(), tags.end(), expect_tag);
            ASSERT_NE(done, tags.end());
            const auto index = static_cast<std::size_t>(done - tags.begin());
            ids[index] = ids.back();
            ids.pop_back();
            tags[index] = tags.back();
            tags.pop_back();
        }
        ASSERT_EQ(queue.size(), reference.live());
    }

    // Drain both to the end: the tail order must match too (this is where
    // rewindowing of far-future churn entries happens).
    while (!queue.empty()) {
        const auto [expect_when, expect_tag] = reference.pop();
        ASSERT_TRUE(queue.run_next());
        ASSERT_EQ(fired_tags.back(), expect_tag);
        ASSERT_EQ(queue.now(), expect_when);
    }
    ASSERT_EQ(reference.live(), 0U);
    ASSERT_FALSE(queue.run_next());
}

TEST(EventQueueDifferential, MatchesReferenceHeapAcrossSeeds) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        DifferentialRunConfig config;
        config.seed = seed;
        run_differential(config);
    }
}

TEST(EventQueueDifferential, HeavyTiesSingleTimestampGrid) {
    // time_grid=1 makes every delta zero: all events land on the current
    // clock, so the entire run is one long FIFO tie chain.
    DifferentialRunConfig config;
    config.seed = 42;
    config.time_grid = 1;
    config.ops = 2000;
    run_differential(config);
}

TEST(EventQueueDifferential, CoarseTieGridWithFarChurn) {
    DifferentialRunConfig config;
    config.seed = 7;
    config.time_grid = 4;
    config.churn_span = 100000.0;
    run_differential(config);
}

TEST(EventQueueDifferential, AuditModeStaysConsistent) {
    // Same randomized traffic with the full structural audit running at
    // every pop: bucket routing, ladder horizon, slab/free-list
    // bookkeeping. Any internal inconsistency throws CheckFailure.
    DifferentialRunConfig config;
    config.seed = 1234;
    config.ops = 1500;
    config.audit = true;
    run_differential(config);
}

#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
TEST(EventQueueDifferential, FingerprintMatchesReferenceDispatchOrder) {
    // The queue folds (when, seq, 0) per dispatch; folding the reference
    // heap's dispatch stream into an identically seeded chain must land on
    // the same digest — the O(1) form of the order-equality the
    // differential runs above assert event by event. The reference tags
    // are the scheduling sequence numbers, matching the queue's seq.
    for (const std::uint64_t seed : {3ULL, 99ULL}) {
        EventQueue queue;
        Fingerprint queue_chain{seed};
        queue.set_fingerprint(&queue_chain);
        ReferenceHeapQueue reference;
        Fingerprint reference_chain{seed};

        Rng rng{seed};
        for (std::size_t i = 0; i < 3000; ++i) {
            const bool churn = (rng() & 7U) == 0;
            const SimTime when =
                queue.now() + rng.uniform() * (churn ? 512.0 : 1.0);
            (void)queue.schedule_at(when, [] {});
            (void)reference.push(when);
        }
        while (!queue.empty()) {
            const auto [when, tag] = reference.pop();
            reference_chain.fold_event(when, tag, 0U);
            ASSERT_TRUE(queue.run_next());
        }
        EXPECT_EQ(queue_chain.digest(), reference_chain.digest());
        EXPECT_EQ(queue_chain.events(), 3000U);
    }
}
#endif

TEST(EventQueueDifferential, StaleIdAfterSlotReuseIsInert) {
    // Slot generations: once an event fires, its slot is recycled under a
    // new generation, so a retained id from the fired event must not
    // cancel the replacement that reuses the slot.
    EventQueue queue;
    int fired = 0;
    const EventId stale = queue.schedule_at(1.0, [&] { ++fired; });
    ASSERT_TRUE(queue.run_next());
    // The singleton queue recycles the slot immediately.
    queue.schedule_at(2.0, [&] { ++fired; });
    queue.cancel(stale);
    EXPECT_EQ(queue.size(), 1U);
    ASSERT_TRUE(queue.run_next());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueAuditPrimitives, CalendarBucketAcceptsCorrectRouting) {
    // Window [10, 10 + 8 * 0.5): t=11.3 routes to floor(1.3 / 0.5) = 2.
    EXPECT_NO_THROW(audit::check_calendar_bucket(11.3, 10.0, 0.5, 8, 2));
    // Exact lower edge of bucket 0.
    EXPECT_NO_THROW(audit::check_calendar_bucket(10.0, 10.0, 0.5, 8, 0));
}

TEST(EventQueueAuditPrimitives, CalendarBucketRejectsWrongBucket) {
    EXPECT_THROW(audit::check_calendar_bucket(11.3, 10.0, 0.5, 8, 3), CheckFailure);
}

TEST(EventQueueAuditPrimitives, CalendarBucketRejectsOutOfWindow) {
    // t=15 routes offset 10 >= 8 buckets: belongs in the ladder.
    EXPECT_THROW(audit::check_calendar_bucket(15.0, 10.0, 0.5, 8, 7), CheckFailure);
    // t before the window start routes a negative offset.
    EXPECT_THROW(audit::check_calendar_bucket(9.0, 10.0, 0.5, 8, 0), CheckFailure);
}

TEST(EventQueueAuditPrimitives, LadderHorizonAcceptsFarFuture) {
    EXPECT_NO_THROW(audit::check_ladder_horizon(15.0, 10.0, 0.5, 8));
    // Exact window end is ladder territory (bucket range is half-open).
    EXPECT_NO_THROW(audit::check_ladder_horizon(14.0, 10.0, 0.5, 8));
}

TEST(EventQueueAuditPrimitives, LadderHorizonRejectsInWindowEntry) {
    EXPECT_THROW(audit::check_ladder_horizon(11.3, 10.0, 0.5, 8), CheckFailure);
}

}  // namespace
}  // namespace swarmavail::sim
