// Invariant-audit layer of the flow-level simulators: the negative tests
// feed deliberately corrupted state to the audit checks and assert each
// violation class is detected; the positive tests run full simulations with
// debug_audit enabled and verify auditing never fires on healthy runs nor
// perturbs results.
#include "sim/audit.hpp"

#include <gtest/gtest.h>

#include "sim/availability_sim.hpp"
#include "sim/event_queue.hpp"
#include "util/check.hpp"

namespace swarmavail::sim {
namespace {

model::SwarmParams base_params() {
    model::SwarmParams params;
    params.peer_arrival_rate = 1.0 / 60.0;
    params.content_size = 80.0;
    params.download_rate = 1.0;
    params.publisher_arrival_rate = 1.0 / 900.0;
    params.publisher_residence = 300.0;
    return params;
}

// ---- negative tests: corrupted state must be caught --------------------

TEST(SimAudit, DetectsNonMonotoneEventTime) {
    // A clock at t=5 popping an event stamped t=4.9 is the classic DES
    // corruption (a heap comparator or tombstone bug).
    EXPECT_THROW(audit::check_monotone_time(5.0, 4.9), CheckFailure);
    EXPECT_NO_THROW(audit::check_monotone_time(5.0, 5.0));
    EXPECT_NO_THROW(audit::check_monotone_time(5.0, 5.1));
}

TEST(SimAudit, DetectsNegativePopulationCount) {
    // A double-decrement of an unsigned counter shows up as a negative
    // signed delta before the wrap.
    EXPECT_THROW(audit::check_nonnegative_count("peers", -1), CheckFailure);
    EXPECT_THROW(audit::check_nonnegative_count("publishers", -7), CheckFailure);
    EXPECT_NO_THROW(audit::check_nonnegative_count("peers", 0));
    EXPECT_NO_THROW(audit::check_nonnegative_count("peers", 12));
}

TEST(SimAudit, DetectsPeerConservationViolation) {
    // 10 arrivals but only 4 served + 2 lost + 3 in system: one peer leaked.
    EXPECT_THROW(audit::check_peer_conservation(10, 4, 2, 3), CheckFailure);
    EXPECT_NO_THROW(audit::check_peer_conservation(10, 4, 2, 4));
    EXPECT_NO_THROW(audit::check_peer_conservation(0, 0, 0, 0));
}

TEST(SimAudit, FailureCarriesFileLineAndMessage) {
    try {
        audit::check_monotone_time(2.0, 1.0);
        FAIL() << "corrupted clock was not detected";
    } catch (const CheckFailure& e) {
        EXPECT_NE(std::string(e.file()).find("audit.cpp"), std::string::npos);
        EXPECT_GT(e.line(), 0);
        EXPECT_NE(e.message().find("event time went backwards"), std::string::npos);
    }
}

// ---- positive tests: healthy runs pass under audit ---------------------

TEST(SimAudit, EventQueueRunsCleanWithAuditOn) {
    EventQueue queue;
    queue.set_audit(true);
    EXPECT_TRUE(queue.audit());
    int fired = 0;
    queue.schedule_at(1.0, [&] { ++fired; });
    queue.schedule_at(1.0, [&] { ++fired; });
    const EventId cancelled = queue.schedule_at(2.0, [&] { ++fired; });
    queue.schedule_at(3.0, [&] { ++fired; });
    queue.cancel(cancelled);
    EXPECT_NO_THROW(queue.run_until(10.0));
    EXPECT_EQ(fired, 3);
    EXPECT_DOUBLE_EQ(queue.now(), 10.0);
}

TEST(SimAudit, AvailabilitySimRunsCleanWithAuditOn) {
    AvailabilitySimConfig config;
    config.params = base_params();
    config.horizon = 2.0e5;
    config.seed = 11;
    config.debug_audit = true;
    for (const bool patient : {true, false}) {
        config.patient_peers = patient;
        const auto result = run_availability_sim(config);
        EXPECT_GT(result.arrivals, 100u);
    }
}

TEST(SimAudit, AvailabilitySimAuditCoversLingerAndOnOffModes) {
    AvailabilitySimConfig config;
    config.params = base_params();
    config.horizon = 2.0e5;
    config.seed = 3;
    config.debug_audit = true;
    config.linger_time = 120.0;
    config.publisher_mode = PublisherMode::kSingleOnOff;
    const auto result = run_availability_sim(config);
    EXPECT_GT(result.arrivals, 100u);
    EXPECT_GT(result.served, 0u);
}

TEST(SimAudit, AuditModeDoesNotPerturbResults) {
    AvailabilitySimConfig config;
    config.params = base_params();
    config.horizon = 1.0e5;
    config.seed = 29;
    config.debug_audit = false;
    const auto plain = run_availability_sim(config);
    config.debug_audit = true;
    const auto audited = run_availability_sim(config);
    EXPECT_EQ(plain.arrivals, audited.arrivals);
    EXPECT_EQ(plain.served, audited.served);
    EXPECT_EQ(plain.lost, audited.lost);
    EXPECT_DOUBLE_EQ(plain.unavailable_time_fraction,
                     audited.unavailable_time_fraction);
}

}  // namespace
}  // namespace swarmavail::sim
