#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/busy_period.hpp"
#include "util/random.hpp"

namespace swarmavail::sim {
namespace {

TEST(SampleBusyPeriod, AtLeastFirstResidence) {
    Rng rng{127};
    for (int i = 0; i < 1000; ++i) {
        const double bp = sample_busy_period(
            rng, 0.01, [](Rng& r) { return r.exponential_mean(10.0); },
            [](Rng& r) { return r.exponential_mean(10.0); });
        EXPECT_GT(bp, 0.0);
    }
}

TEST(SampleBusyPeriod, MatchesEquation20) {
    // All-exponential residences: E[B] = (e^{beta alpha} - 1)/beta.
    Rng rng{131};
    const double beta = 0.05;
    const double alpha = 30.0;
    StreamingStats stats;
    const auto residence = [alpha](Rng& r) { return r.exponential_mean(alpha); };
    for (int i = 0; i < 100000; ++i) {
        stats.add(sample_busy_period(rng, beta, residence, residence));
    }
    const double expected = (std::exp(beta * alpha) - 1.0) / beta;
    EXPECT_NEAR(stats.mean(), expected, 5.0 * stats.ci95_halfwidth());
}

TEST(SampleBusyPeriod, DeterministicFirstResidenceFloor) {
    // With a constant first residence of C and negligible arrivals, the
    // busy period is exactly C.
    Rng rng{137};
    const double bp = sample_busy_period(
        rng, 1e-9, [](Rng&) { return 42.0; },
        [](Rng& r) { return r.exponential_mean(1.0); });
    EXPECT_NEAR(bp, 42.0, 1e-6);
}

TEST(SampleMixedBusyPeriods, StatisticsAccumulate) {
    Rng rng{139};
    const MixedBusyPeriodMc params{0.05, 20.0, 0.5, 40.0, 10.0};
    const auto stats = sample_mixed_busy_periods(rng, params, 5000);
    EXPECT_EQ(stats.count(), 5000u);
    EXPECT_GT(stats.mean(), 20.0);  // at least the initiator's mean stay
}

TEST(SampleMixedBusyPeriods, RejectsInvalidParameters) {
    Rng rng{139};
    EXPECT_THROW((void)sample_mixed_busy_periods(rng, {0.0, 1.0, 0.5, 1.0, 1.0}, 10),
                 std::invalid_argument);
    EXPECT_THROW((void)sample_mixed_busy_periods(rng, {1.0, 1.0, 2.0, 1.0, 1.0}, 10),
                 std::invalid_argument);
}

TEST(SampleResidualBusyPeriod, PositiveAndFinite) {
    Rng rng{149};
    for (int i = 0; i < 100; ++i) {
        const double value = sample_residual_busy_period(rng, 5, 2, 0.01, 50.0);
        EXPECT_GT(value, 0.0);
        EXPECT_TRUE(std::isfinite(value));
    }
}

TEST(SampleResidualBusyPeriod, AdditivityOverThresholds) {
    // E[T(n->l)] = E[T(n->k)] + E[T(k->l)] (Lemma 3.3 proof).
    Rng rng{151};
    const double lambda = 1.0 / 60.0;
    const double service = 80.0;
    StreamingStats direct;
    StreamingStats composed;
    for (int i = 0; i < 40000; ++i) {
        direct.add(sample_residual_busy_period(rng, 6, 1, lambda, service));
        composed.add(sample_residual_busy_period(rng, 6, 3, lambda, service) +
                     sample_residual_busy_period(rng, 3, 1, lambda, service));
    }
    EXPECT_NEAR(direct.mean(), composed.mean(),
                4.0 * (direct.ci95_halfwidth() + composed.ci95_halfwidth()));
}

TEST(SampleResidualBusyPeriod, RejectsNotAboveThreshold) {
    Rng rng{151};
    EXPECT_THROW((void)sample_residual_busy_period(rng, 3, 3, 0.1, 10.0),
                 std::invalid_argument);
    EXPECT_THROW((void)sample_residual_busy_period(rng, 2, 5, 0.1, 10.0),
                 std::invalid_argument);
}

TEST(SampleSteadyStateResidual, ZeroWhenBelowThreshold) {
    // With rho tiny and threshold large, the initial population is almost
    // surely <= m: the residual is 0.
    Rng rng{157};
    for (int i = 0; i < 200; ++i) {
        EXPECT_DOUBLE_EQ(sample_steady_state_residual(rng, 10, 0.001, 10.0), 0.0);
    }
}

TEST(SampleSteadyStateResidual, MatchesEquation13) {
    Rng rng{163};
    const std::size_t m = 2;
    const double lambda = 0.04;
    const double service = 100.0;  // rho = 4
    StreamingStats stats;
    for (int i = 0; i < 60000; ++i) {
        stats.add(sample_steady_state_residual(rng, m, lambda, service));
    }
    const double theory =
        queueing::steady_state_residual_busy_period(m, {lambda, service});
    EXPECT_NEAR(stats.mean(), theory, 5.0 * stats.ci95_halfwidth());
}

}  // namespace
}  // namespace swarmavail::sim
