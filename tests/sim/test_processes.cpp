#include "sim/processes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace swarmavail::sim {
namespace {

TEST(PoissonProcess, ArrivalCountMatchesRate) {
    EventQueue queue;
    Rng rng{71};
    int count = 0;
    PoissonProcess process{queue, rng, 0.5, [&] { ++count; }};
    process.start(10000.0);
    queue.run_until(10000.0);
    EXPECT_NEAR(count, 5000, 300);  // ~4 sigma
}

TEST(PoissonProcess, InterarrivalsAreExponential) {
    EventQueue queue;
    Rng rng{73};
    std::vector<double> times;
    PoissonProcess process{queue, rng, 1.0, [&] { times.push_back(queue.now()); }};
    process.start(20000.0);
    queue.run_until(20000.0);
    StreamingStats gaps;
    for (std::size_t i = 1; i < times.size(); ++i) {
        gaps.add(times[i] - times[i - 1]);
    }
    EXPECT_NEAR(gaps.mean(), 1.0, 0.05);
    EXPECT_NEAR(gaps.stddev(), 1.0, 0.08);  // CV = 1 for exponential
}

TEST(PoissonProcess, StopCancelsPendingArrival) {
    EventQueue queue;
    Rng rng{79};
    int count = 0;
    PoissonProcess process{queue, rng, 100.0, [&] { ++count; }};
    process.start(1000.0);
    process.stop();
    queue.run_until(1000.0);
    EXPECT_EQ(count, 0);
}

TEST(PoissonProcess, NoArrivalsAfterHorizon) {
    EventQueue queue;
    Rng rng{83};
    double last = 0.0;
    PoissonProcess process{queue, rng, 2.0, [&] { last = queue.now(); }};
    process.start(50.0);
    queue.run_until(500.0);
    EXPECT_LE(last, 50.0);
}

TEST(PoissonProcess, RejectsInvalidConstruction) {
    EventQueue queue;
    Rng rng{83};
    EXPECT_THROW((PoissonProcess{queue, rng, 0.0, [] {}}), std::invalid_argument);
    EXPECT_THROW((PoissonProcess{queue, rng, 1.0, nullptr}), std::invalid_argument);
}

TEST(OnOffProcess, StartsOnImmediately) {
    EventQueue queue;
    Rng rng{89};
    int ups = 0;
    int downs = 0;
    OnOffProcess process{queue, rng, 10.0, 30.0, [&] { ++ups; }, [&] { ++downs; }};
    process.start(1.0e-9);
    EXPECT_EQ(ups, 1);
    EXPECT_EQ(downs, 0);
    EXPECT_TRUE(process.is_on());
}

TEST(OnOffProcess, DutyCycleMatchesMeans) {
    EventQueue queue;
    Rng rng{97};
    double on_time = 0.0;
    double last_up = 0.0;
    OnOffProcess process{queue,
                         rng,
                         300.0,
                         900.0,
                         [&] { last_up = queue.now(); },
                         [&] { on_time += queue.now() - last_up; }};
    const double horizon = 3.0e6;
    process.start(horizon);
    queue.run_until(horizon);
    if (process.is_on()) {
        on_time += horizon - last_up;
    }
    EXPECT_NEAR(on_time / horizon, 0.25, 0.03);
}

TEST(OnOffProcess, AlternatesStates) {
    EventQueue queue;
    Rng rng{101};
    std::vector<int> sequence;
    OnOffProcess process{queue, rng, 5.0, 5.0, [&] { sequence.push_back(1); },
                         [&] { sequence.push_back(0); }};
    process.start(200.0);
    queue.run_until(200.0);
    ASSERT_GE(sequence.size(), 4u);
    for (std::size_t i = 1; i < sequence.size(); ++i) {
        EXPECT_NE(sequence[i], sequence[i - 1]);
    }
}

TEST(TraceArrivalProcess, FiresAtTraceTimes) {
    EventQueue queue;
    std::vector<double> fired;
    TraceArrivalProcess process{queue, {1.0, 4.0, 9.0},
                                [&] { fired.push_back(queue.now()); }};
    process.start();
    queue.run_until(10.0);
    EXPECT_EQ(fired, (std::vector<double>{1.0, 4.0, 9.0}));
}

TEST(TraceArrivalProcess, RejectsUnsortedTrace) {
    EventQueue queue;
    EXPECT_THROW((TraceArrivalProcess{queue, {2.0, 1.0}, [] {}}),
                 std::invalid_argument);
}

TEST(SampleDecayingPoisson, CountMatchesIntegratedRate) {
    Rng rng{103};
    // Expected count = lambda0 * tau * (1 - e^{-T/tau}).
    const double lambda0 = 2.0;
    const double tau = 100.0;
    const double horizon = 500.0;
    StreamingStats counts;
    for (int i = 0; i < 200; ++i) {
        counts.add(static_cast<double>(
            sample_decaying_poisson(rng, lambda0, tau, horizon).size()));
    }
    const double expected = lambda0 * tau * (1.0 - std::exp(-horizon / tau));
    EXPECT_NEAR(counts.mean(), expected, 5.0 * counts.ci95_halfwidth() + 1.0);
}

TEST(SampleDecayingPoisson, RateDecaysOverTime) {
    Rng rng{107};
    std::size_t early = 0;
    std::size_t late = 0;
    for (int i = 0; i < 100; ++i) {
        for (double t : sample_decaying_poisson(rng, 1.0, 50.0, 400.0)) {
            (t < 100.0 ? early : late) += 1;
        }
    }
    EXPECT_GT(early, 4 * late);
}

TEST(SampleHomogeneousPoisson, SteadyRate) {
    Rng rng{109};
    const auto arrivals = sample_homogeneous_poisson(rng, 0.1, 100000.0);
    EXPECT_NEAR(static_cast<double>(arrivals.size()), 10000.0, 400.0);
    // First and second half counts comparable.
    std::size_t first_half = 0;
    for (double t : arrivals) {
        if (t < 50000.0) {
            ++first_half;
        }
    }
    EXPECT_NEAR(static_cast<double>(first_half),
                static_cast<double>(arrivals.size()) / 2.0, 300.0);
}

TEST(SampleGenerators, ReturnSortedTimes) {
    Rng rng{113};
    for (const auto& trace : {sample_decaying_poisson(rng, 1.0, 60.0, 300.0),
                              sample_homogeneous_poisson(rng, 0.5, 300.0)}) {
        EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end()));
    }
}

}  // namespace
}  // namespace swarmavail::sim
