// Determinism-fingerprint tests: the hash chain itself, observer
// neutrality (fingerprint on == off results, bit for bit), and the
// cross-execution invariances the repo's determinism contract promises —
// identical digests at every thread count, sharded == shared-queue — plus
// the converse: a seed perturbation that changes the results must change
// the digest.
#include "sim/fingerprint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "catalog/bundling_policy.hpp"
#include "catalog/catalog.hpp"
#include "catalog/catalog_engine.hpp"
#include "catalog/report.hpp"
#include "sim/availability_sim.hpp"
#include "swarm/swarm_sim.hpp"
#include "util/stats.hpp"

namespace swarmavail::sim {
namespace {

TEST(FingerprintChain, OrderSensitive) {
    Fingerprint forward;
    forward.fold_event(1.0, 1U);
    forward.fold_event(2.0, 2U);
    Fingerprint swapped;
    swapped.fold_event(2.0, 2U);
    swapped.fold_event(1.0, 1U);
    EXPECT_NE(forward.digest(), swapped.digest());
    EXPECT_EQ(forward.events(), 2U);
    EXPECT_EQ(swapped.events(), 2U);
}

TEST(FingerprintChain, SeedSeparatesChains) {
    Fingerprint a{1};
    Fingerprint b{2};
    EXPECT_NE(a.digest(), b.digest());
    a.fold_event(5.0, 3U);
    b.fold_event(5.0, 3U);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(FingerprintChain, EventCountSeparatesPrefixes) {
    // A run that stopped early must not alias a longer run: the digest
    // folds the event count, so even a (contrived) state collision cannot
    // make unequal-length chains agree by default.
    Fingerprint a;
    a.fold_event(1.0, 1U);
    Fingerprint b;
    b.fold_event(1.0, 1U);
    b.fold_event(1.0, 1U);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(FingerprintChain, DoubleFoldsByBitPattern) {
    Fingerprint pos;
    pos.fold(0.0);
    Fingerprint neg;
    neg.fold(-0.0);
    EXPECT_NE(pos.digest(), neg.digest());
}

TEST(FingerprintChain, ChildMergeIsOrderSensitive) {
    Fingerprint child_a{1};
    child_a.fold_event(1.0, 1U);
    Fingerprint child_b{2};
    child_b.fold_event(2.0, 2U);
    Fingerprint ab;
    ab.fold_child(child_a);
    ab.fold_child(child_b);
    Fingerprint ba;
    ba.fold_child(child_b);
    ba.fold_child(child_a);
    EXPECT_NE(ab.digest(), ba.digest());
}

TEST(FingerprintChain, HexIsSixteenZeroPaddedDigits) {
    EXPECT_EQ(fingerprint_hex(0), "0000000000000000");
    EXPECT_EQ(fingerprint_hex(0x1a2b3c4d5e6fULL), "00001a2b3c4d5e6f");
    EXPECT_EQ(fingerprint_hex(~0ULL), "ffffffffffffffff");
}

// ---- engine integration ---------------------------------------------------

AvailabilitySimConfig availability_config(std::uint64_t seed) {
    AvailabilitySimConfig config;
    config.params.peer_arrival_rate = 1.0 / 90.0;
    config.params.content_size = 80.0;
    config.params.download_rate = 1.0;
    config.params.publisher_arrival_rate = 1.0 / 900.0;
    config.params.publisher_residence = 300.0;
    config.horizon = 5.0e4;
    config.seed = seed;
    return config;
}

void expect_stats_equal(const StreamingStats& a, const StreamingStats& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void expect_same_statistics(const AvailabilitySimResult& a,
                            const AvailabilitySimResult& b) {
    expect_stats_equal(a.busy_periods, b.busy_periods);
    expect_stats_equal(a.idle_periods, b.idle_periods);
    expect_stats_equal(a.download_times, b.download_times);
    expect_stats_equal(a.waiting_times, b.waiting_times);
    expect_stats_equal(a.peers_per_busy_period, b.peers_per_busy_period);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_EQ(a.stranded, b.stranded);
    EXPECT_EQ(a.unavailable_time_fraction, b.unavailable_time_fraction);
    EXPECT_EQ(a.arrival_unavailability, b.arrival_unavailability);
    EXPECT_EQ(a.publisher_up_transitions, b.publisher_up_transitions);
    EXPECT_EQ(a.publisher_online_fraction, b.publisher_online_fraction);
}

TEST(FingerprintAvailability, ReproducibleAcrossRuns) {
    const auto first = run_availability_sim(availability_config(11));
    const auto second = run_availability_sim(availability_config(11));
#if defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    EXPECT_EQ(first.fingerprint, 0U);
    EXPECT_EQ(second.fingerprint, 0U);
#else
    EXPECT_NE(first.fingerprint, 0U);
    EXPECT_GT(first.fingerprint_events, 0U);
#endif
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.fingerprint_events, second.fingerprint_events);
}

TEST(FingerprintAvailability, ObserverNeutralityOnEqualsOff) {
    auto config = availability_config(12);
    const auto with = run_availability_sim(config);
    config.fingerprint = false;
    const auto without = run_availability_sim(config);
    EXPECT_EQ(without.fingerprint, 0U);
    EXPECT_EQ(without.fingerprint_events, 0U);
    expect_same_statistics(with, without);
}

TEST(FingerprintAvailability, SeedPerturbationMovesDigestWithResults) {
#if defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    GTEST_SKIP() << "fingerprinting compiled out";
#else
    const auto base = run_availability_sim(availability_config(13));
    const auto perturbed = run_availability_sim(availability_config(14));
    // The perturbed run is a different sample path...
    EXPECT_NE(base.arrivals, perturbed.arrivals);
    // ...and the digest says so without comparing any statistic.
    EXPECT_NE(base.fingerprint, perturbed.fingerprint);
#endif
}

swarm::SwarmSimConfig swarm_config(std::uint64_t seed) {
    swarm::SwarmSimConfig config;
    config.bundle_size = 2;
    config.file_size = 4.0e6 * 8.0;
    config.peer_arrival_rate = 1.0 / 60.0;
    config.peer_capacity =
        std::make_shared<swarm::HomogeneousCapacity>(50.0 * swarm::kKBps);
    config.publisher_capacity = 100.0 * swarm::kKBps;
    config.horizon = 4000.0;
    config.seed = seed;
    return config;
}

TEST(FingerprintSwarm, ReproducibleAndNeutral) {
    auto config = swarm_config(21);
    const auto first = swarm::run_swarm_sim(config);
    const auto second = swarm::run_swarm_sim(config);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.fingerprint_events, second.fingerprint_events);
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    EXPECT_NE(first.fingerprint, 0U);
#endif
    config.fingerprint = false;
    const auto off = swarm::run_swarm_sim(config);
    EXPECT_EQ(off.fingerprint, 0U);
    EXPECT_EQ(off.completion_times, first.completion_times);
    EXPECT_EQ(off.available_fraction, first.available_fraction);
    EXPECT_EQ(off.stuck_at_horizon, first.stuck_at_horizon);
}

TEST(FingerprintSwarm, SeedPerturbationMovesDigest) {
#if defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    GTEST_SKIP() << "fingerprinting compiled out";
#else
    const auto base = swarm::run_swarm_sim(swarm_config(21));
    const auto perturbed = swarm::run_swarm_sim(swarm_config(22));
    EXPECT_NE(base.fingerprint, perturbed.fingerprint);
#endif
}

// ---- catalog-wide invariances ---------------------------------------------

catalog::CatalogConfig catalog_config(std::size_t files) {
    catalog::CatalogConfig config;
    config.num_files = files;
    config.zipf_exponent = 1.0;
    config.aggregate_demand = static_cast<double>(files) / 60.0;
    config.file_size = 80.0;
    config.download_rate = 1.0;
    config.publisher_arrival_rate = 1.0 / 900.0;
    config.publisher_residence = 300.0;
    return config;
}

catalog::CatalogEngineConfig engine_config() {
    catalog::CatalogEngineConfig config;
    config.horizon = 2.0e4;
    config.seed = 20090101;
    return config;
}

TEST(FingerprintCatalog, IdenticalAcrossThreadCounts) {
    const auto cat = catalog::build_catalog(catalog_config(12));
    const catalog::FixedK policy{3};
    std::vector<catalog::CatalogReport> reports;
    for (const std::size_t threads : {1U, 2U, 4U, 8U}) {
        auto config = engine_config();
        config.policy = ParallelPolicy{threads};
        reports.push_back(catalog::run_catalog(cat, policy, config));
    }
    for (std::size_t i = 1; i < reports.size(); ++i) {
        EXPECT_EQ(reports[i].fingerprint, reports[0].fingerprint)
            << "catalog fingerprint diverged at thread count " << (1U << i);
        ASSERT_EQ(reports[i].swarms.size(), reports[0].swarms.size());
        for (std::size_t s = 0; s < reports[i].swarms.size(); ++s) {
            EXPECT_EQ(reports[i].swarms[s].result.fingerprint,
                      reports[0].swarms[s].result.fingerprint);
        }
    }
#if !defined(SWARMAVAIL_FINGERPRINT_DISABLED)
    EXPECT_NE(reports[0].fingerprint, 0U);
#endif
}

TEST(FingerprintCatalog, SharedQueueEqualsSharded) {
    const auto cat = catalog::build_catalog(catalog_config(9));
    const catalog::FixedK policy{2};
    auto config = engine_config();
    const auto sharded = catalog::run_catalog(cat, policy, config);
    config.execution = catalog::ExecutionMode::kSharedQueue;
    const auto shared = catalog::run_catalog(cat, policy, config);
    EXPECT_EQ(shared.fingerprint, sharded.fingerprint);
    ASSERT_EQ(shared.swarms.size(), sharded.swarms.size());
    for (std::size_t s = 0; s < shared.swarms.size(); ++s) {
        EXPECT_EQ(shared.swarms[s].result.fingerprint,
                  sharded.swarms[s].result.fingerprint)
            << "per-swarm digest diverged between executions at swarm " << s;
        EXPECT_EQ(shared.swarms[s].result.fingerprint_events,
                  sharded.swarms[s].result.fingerprint_events);
    }
}

TEST(FingerprintCatalog, RuntimeOffZeroesDigestsOnly) {
    const auto cat = catalog::build_catalog(catalog_config(6));
    const catalog::FixedK policy{2};
    auto config = engine_config();
    const auto with = catalog::run_catalog(cat, policy, config);
    config.fingerprint = false;
    const auto without = catalog::run_catalog(cat, policy, config);
    EXPECT_EQ(without.fingerprint, 0U);
    ASSERT_EQ(without.swarms.size(), with.swarms.size());
    for (std::size_t s = 0; s < with.swarms.size(); ++s) {
        EXPECT_EQ(without.swarms[s].result.fingerprint, 0U);
        expect_same_statistics(with.swarms[s].result, without.swarms[s].result);
    }
    EXPECT_EQ(with.demand_weighted_unavailability,
              without.demand_weighted_unavailability);
}

}  // namespace
}  // namespace swarmavail::sim
