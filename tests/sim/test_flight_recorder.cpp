// Flight-recorder tests: ring retention semantics (last N records, oldest
// first, batch overfill), the dump-on-annotate path that the engines reach
// through trace_check_failure, and the JSONL dump shape (parsable by
// read_trace_jsonl, i.e. by trace_inspect).
#include "sim/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace swarmavail::sim {
namespace {

TraceRecord record_at(double time, std::uint64_t entity = 0) {
    TraceRecord record;
    record.time = time;
    record.kind = TraceKind::kCustom;
    record.entity = entity;
    return record;
}

TEST(FlightRecorder, RetainsEverythingBelowCapacity) {
    FlightRecorder recorder{8};
    for (int i = 0; i < 5; ++i) {
        const TraceRecord record = record_at(i);
        recorder.write(&record, 1);
    }
    const auto window = recorder.window();
    ASSERT_EQ(window.size(), 5U);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(window[static_cast<std::size_t>(i)].time, i);
    }
    EXPECT_EQ(recorder.total_records(), 5U);
    EXPECT_EQ(recorder.capacity(), 8U);
}

TEST(FlightRecorder, KeepsNewestOldestFirstAfterWrap) {
    FlightRecorder recorder{4};
    for (int i = 0; i < 11; ++i) {
        const TraceRecord record = record_at(i);
        recorder.write(&record, 1);
    }
    const auto window = recorder.window();
    ASSERT_EQ(window.size(), 4U);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(window[static_cast<std::size_t>(i)].time, 7 + i);
    }
    EXPECT_EQ(recorder.total_records(), 11U);
}

TEST(FlightRecorder, BatchLargerThanCapacityKeepsItsTail) {
    FlightRecorder recorder{3};
    std::vector<TraceRecord> batch;
    for (int i = 0; i < 10; ++i) {
        batch.push_back(record_at(i));
    }
    recorder.write(batch.data(), batch.size());
    const auto window = recorder.window();
    ASSERT_EQ(window.size(), 3U);
    EXPECT_EQ(window[0].time, 7.0);
    EXPECT_EQ(window[2].time, 9.0);
}

TEST(FlightRecorder, RejectsZeroCapacity) {
    EXPECT_THROW(FlightRecorder{0}, std::invalid_argument);
}

TEST(FlightRecorder, DumpIsParseableJsonlWithAnnotation) {
    FlightRecorder recorder{4};
    for (int i = 0; i < 6; ++i) {
        const TraceRecord record = record_at(i, static_cast<std::uint64_t>(i));
        recorder.write(&record, 1);
    }
    std::ostringstream os;
    recorder.dump(os, 5.5, "fingerprint mismatch at checkpoint 3");
    std::istringstream in{os.str()};
    const ParsedTrace parsed = read_trace_jsonl(in);
    ASSERT_EQ(parsed.records.size(), 4U);
    EXPECT_EQ(parsed.records.front().time, 2.0);
    EXPECT_EQ(parsed.records.back().time, 5.0);
    ASSERT_EQ(parsed.annotations.size(), 1U);
    EXPECT_EQ(parsed.annotations[0].time, 5.5);
    EXPECT_EQ(parsed.annotations[0].text, "fingerprint mismatch at checkpoint 3");
}

TEST(FlightRecorder, AnnotateDumpsToConfiguredStream) {
    FlightRecorder recorder{4};
    const TraceRecord record = record_at(1.0);
    recorder.write(&record, 1);
    std::ostringstream os;
    recorder.set_dump_stream(&os);
    EXPECT_EQ(recorder.dumps(), 0U);
    recorder.annotate(2.0, "boom");
    EXPECT_EQ(recorder.dumps(), 1U);
    ASSERT_EQ(recorder.annotations().size(), 1U);
    EXPECT_EQ(recorder.annotations()[0], "boom");
    std::istringstream in{os.str()};
    const ParsedTrace parsed = read_trace_jsonl(in);
    EXPECT_EQ(parsed.records.size(), 1U);
    ASSERT_EQ(parsed.annotations.size(), 1U);
    EXPECT_EQ(parsed.annotations[0].text, "boom");
}

TEST(FlightRecorder, CheckFailurePathDeliversWindowAndDiagnostic) {
    // The engine-side wiring: a recorder behind a Tracer receives buffered
    // records and then the CheckFailure annotation, because
    // Tracer::annotate flushes before forwarding. No engine changes needed.
    FlightRecorder recorder{8};
    Tracer tracer{recorder};
    tracer.set_enabled(true);
    tracer.record(TraceKind::kPeerArrival, 1.0, 7);
    tracer.record(TraceKind::kPeerCompletion, 2.0, 7, 1.0);
    try {
        ensure(false, "injected invariant break");
        FAIL() << "ensure must throw";
    } catch (const CheckFailure& failure) {
        trace_check_failure(&tracer, 2.5, failure);
    }
    const auto window = recorder.window();
    ASSERT_EQ(window.size(), 2U);
    EXPECT_EQ(window[0].kind, TraceKind::kPeerArrival);
    EXPECT_EQ(window[1].kind, TraceKind::kPeerCompletion);
    ASSERT_EQ(recorder.annotations().size(), 1U);
    EXPECT_NE(recorder.annotations()[0].find("injected invariant break"),
              std::string::npos);
}

}  // namespace
}  // namespace swarmavail::sim
