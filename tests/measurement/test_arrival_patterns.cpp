#include "measurement/arrival_patterns.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace swarmavail::measurement {
namespace {

TEST(NewSwarmArrivals, FrontLoaded) {
    Rng rng{191};
    std::size_t early = 0;
    std::size_t late = 0;
    for (int i = 0; i < 50; ++i) {
        for (double t : new_swarm_arrivals(rng, 200.0, 5.0, 30.0)) {
            (t < 10.0 * 86400.0 ? early : late) += 1;
        }
    }
    EXPECT_GT(early, 3 * late);
}

TEST(OldSwarmArrivals, RoughlyUniform) {
    Rng rng{193};
    std::size_t first = 0;
    std::size_t second = 0;
    for (int i = 0; i < 50; ++i) {
        for (double t : old_swarm_arrivals(rng, 20.0, 30.0)) {
            (t < 15.0 * 86400.0 ? first : second) += 1;
        }
    }
    const double ratio = static_cast<double>(first) / static_cast<double>(second);
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.18);
}

TEST(DailyCounts, BinsCorrectly) {
    const std::vector<double> arrivals{0.0, 1000.0, 86400.0, 86400.0 * 2.5};
    const auto counts = daily_counts(arrivals, 3.0);
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
}

TEST(DailyCounts, IgnoresBeyondHorizon) {
    const std::vector<double> arrivals{86400.0 * 10.0};
    const auto counts = daily_counts(arrivals, 2.0);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}), 0u);
}

TEST(CountVariation, ConstantCountsHaveZeroVariation) {
    EXPECT_DOUBLE_EQ(count_variation({5, 5, 5, 5}), 0.0);
}

TEST(CountVariation, AllZeroIsZero) {
    EXPECT_DOUBLE_EQ(count_variation({0, 0, 0}), 0.0);
}

TEST(CountVariation, NewSwarmsVaryMoreThanOldSwarms) {
    // Figure 7's contrast: the decaying flash-crowd pattern has a much
    // higher coefficient of variation than the steady old-swarm pattern.
    Rng rng{197};
    const auto new_counts = daily_counts(new_swarm_arrivals(rng, 300.0, 4.0, 30.0), 30.0);
    const auto old_counts = daily_counts(old_swarm_arrivals(rng, 40.0, 30.0), 30.0);
    EXPECT_GT(count_variation(new_counts), 2.0 * count_variation(old_counts));
}

TEST(Generators, RejectInvalidHorizon) {
    Rng rng{199};
    EXPECT_THROW((void)new_swarm_arrivals(rng, 1.0, 1.0, 0.0), std::invalid_argument);
    EXPECT_THROW((void)old_swarm_arrivals(rng, 1.0, -1.0), std::invalid_argument);
    EXPECT_THROW((void)daily_counts({}, 0.0), std::invalid_argument);
    EXPECT_THROW((void)count_variation({}), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::measurement
