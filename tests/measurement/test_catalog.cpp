#include "measurement/catalog.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace swarmavail::measurement {
namespace {

CatalogConfig small_config() {
    CatalogConfig config;
    config.music_swarms = 2000;
    config.tv_swarms = 1500;
    config.book_swarms = 1500;
    config.movie_swarms = 500;
    config.other_swarms = 500;
    config.seed = 99;
    return config;
}

TEST(GenerateCatalog, TotalCountMatchesConfig) {
    const auto catalog = generate_catalog(small_config());
    EXPECT_EQ(catalog.size(), 2000u + 1500u + 1500u + 500u + 500u);
}

TEST(GenerateCatalog, UniqueIds) {
    const auto catalog = generate_catalog(small_config());
    std::set<std::uint64_t> ids;
    for (const auto& swarm : catalog) {
        EXPECT_TRUE(ids.insert(swarm.id).second);
    }
}

TEST(GenerateCatalog, CategoryCountsMatch) {
    const auto catalog = generate_catalog(small_config());
    std::size_t music = 0;
    std::size_t tv = 0;
    std::size_t books = 0;
    for (const auto& swarm : catalog) {
        music += swarm.category == Category::kMusic ? 1 : 0;
        tv += swarm.category == Category::kTv ? 1 : 0;
        books += swarm.category == Category::kBooks ? 1 : 0;
    }
    EXPECT_EQ(music, 2000u);
    EXPECT_EQ(tv, 1500u);
    EXPECT_EQ(books, 1500u);
}

TEST(GenerateCatalog, EverySwarmHasFilesAndValidProcesses) {
    const auto catalog = generate_catalog(small_config());
    for (const auto& swarm : catalog) {
        EXPECT_FALSE(swarm.files.empty());
        EXPECT_GT(swarm.seed_uptime_hours, 0.0);
        EXPECT_GT(swarm.seed_downtime_hours, 0.0);
        EXPECT_GT(swarm.popularity, 0.0);
        EXPECT_GT(swarm.age_days, 0.0);
        for (const auto& file : swarm.files) {
            EXPECT_FALSE(file.name.empty());
            EXPECT_GT(file.size_bits, 0.0);
        }
    }
}

TEST(GenerateCatalog, DeterministicForFixedSeed) {
    const auto a = generate_catalog(small_config());
    const auto b = generate_catalog(small_config());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].title, b[i].title);
        EXPECT_EQ(a[i].downloads, b[i].downloads);
    }
}

TEST(GenerateCatalog, CollectionsOnlyInBooks) {
    const auto catalog = generate_catalog(small_config());
    for (const auto& swarm : catalog) {
        if (swarm.title.find("collection") != std::string::npos) {
            EXPECT_EQ(swarm.category, Category::kBooks);
        }
    }
}

TEST(GenerateCatalog, RejectsInvalidFractions) {
    auto config = small_config();
    config.music_bundle_fraction = 1.5;
    EXPECT_THROW((void)generate_catalog(config), std::invalid_argument);
    config = small_config();
    config.base_uptime_hours = 0.0;
    EXPECT_THROW((void)generate_catalog(config), std::invalid_argument);
}

TEST(IntrinsicAvailability, RatioOfUptime) {
    SwarmEntry swarm;
    swarm.seed_uptime_hours = 25.0;
    swarm.seed_downtime_hours = 75.0;
    EXPECT_DOUBLE_EQ(intrinsic_availability(swarm), 0.25);
}

TEST(IntrinsicAvailability, RejectsNonPositiveMeans) {
    SwarmEntry swarm;
    swarm.seed_uptime_hours = 0.0;
    swarm.seed_downtime_hours = 1.0;
    EXPECT_THROW((void)intrinsic_availability(swarm), std::invalid_argument);
}

TEST(CategoryToString, AllValuesNamed) {
    EXPECT_EQ(to_string(Category::kMusic), "music");
    EXPECT_EQ(to_string(Category::kTv), "tv");
    EXPECT_EQ(to_string(Category::kBooks), "books");
    EXPECT_EQ(to_string(Category::kMovies), "movies");
    EXPECT_EQ(to_string(Category::kOther), "other");
}

}  // namespace
}  // namespace swarmavail::measurement
