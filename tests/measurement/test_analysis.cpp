#include "measurement/analysis.hpp"

#include <gtest/gtest.h>

#include "measurement/monitor.hpp"

namespace swarmavail::measurement {
namespace {

SwarmEntry make_swarm(Category category, std::vector<std::string> names,
                      const std::string& title = "swarm") {
    SwarmEntry swarm;
    swarm.id = 1;
    swarm.category = category;
    swarm.title = title;
    for (auto& name : names) {
        swarm.files.push_back({std::move(name), 1.0});
    }
    swarm.seed_uptime_hours = 10.0;
    swarm.seed_downtime_hours = 10.0;
    return swarm;
}

TEST(HasExtension, MatchesSuffixOnly) {
    EXPECT_TRUE(has_extension("track01.mp3", ".mp3"));
    EXPECT_FALSE(has_extension("track01.mp3.txt", ".mp3"));
    EXPECT_FALSE(has_extension("mp3", ".mp3"));
    EXPECT_FALSE(has_extension("a.mp4", ".mp3"));
    EXPECT_FALSE(has_extension("short", ".verylongext"));
}

TEST(ClassifyBundle, TwoMediaFilesRequired) {
    EXPECT_FALSE(classify_bundle(make_swarm(Category::kMusic, {"a.mp3"})));
    EXPECT_TRUE(classify_bundle(make_swarm(Category::kMusic, {"a.mp3", "b.mp3"})));
    EXPECT_TRUE(classify_bundle(make_swarm(Category::kMusic, {"a.mp3", "b.wav"})));
}

TEST(ClassifyBundle, AuxiliaryFilesDoNotCount) {
    // Cover art and NFO files must not trigger bundle classification.
    EXPECT_FALSE(classify_bundle(
        make_swarm(Category::kMusic, {"a.mp3", "cover.jpg", "info.nfo"})));
}

TEST(ClassifyBundle, CategorySpecificExtensions) {
    // An .mp3 inside a TV swarm does not make it a TV bundle.
    EXPECT_FALSE(classify_bundle(make_swarm(Category::kTv, {"a.mp3", "b.mp3"})));
    EXPECT_TRUE(classify_bundle(make_swarm(Category::kTv, {"e1.avi", "e2.avi"})));
    EXPECT_TRUE(classify_bundle(make_swarm(Category::kBooks, {"a.pdf", "b.djvu"})));
}

TEST(ClassifyBundle, MoviesNeverAutoClassified) {
    // Section 2.3.1: movie bundling cannot be detected automatically.
    EXPECT_FALSE(classify_bundle(make_swarm(Category::kMovies, {"cd1.avi", "cd2.avi"})));
}

TEST(ClassifyCollection, KeywordAndCategory) {
    EXPECT_TRUE(classify_collection(
        make_swarm(Category::kBooks, {"a.pdf"}, "ultimate math collection")));
    EXPECT_FALSE(classify_collection(make_swarm(Category::kBooks, {"a.pdf"}, "math")));
    EXPECT_FALSE(classify_collection(
        make_swarm(Category::kMusic, {"a.mp3"}, "hits collection")));
}

TEST(BundlingExtent, CountsPerCategory) {
    Catalog catalog;
    catalog.push_back(make_swarm(Category::kMusic, {"a.mp3", "b.mp3"}));
    catalog.push_back(make_swarm(Category::kMusic, {"a.mp3"}));
    catalog.push_back(make_swarm(Category::kBooks, {"a.pdf"}, "x collection"));
    const auto extent = bundling_extent(catalog);
    ASSERT_EQ(extent.size(), 2u);
    EXPECT_EQ(extent[0].category, Category::kMusic);
    EXPECT_EQ(extent[0].swarms, 2u);
    EXPECT_EQ(extent[0].bundles, 1u);
    EXPECT_DOUBLE_EQ(extent[0].bundle_fraction(), 0.5);
    EXPECT_EQ(extent[1].category, Category::kBooks);
    EXPECT_EQ(extent[1].collections, 1u);
}

TEST(BundlingExtent, SyntheticCatalogMatchesPaperFractions) {
    CatalogConfig config;
    config.music_swarms = 8000;
    config.tv_swarms = 5000;
    config.book_swarms = 4000;
    config.movie_swarms = 0;
    config.other_swarms = 0;
    const auto catalog = generate_catalog(config);
    const auto extent = bundling_extent(catalog);
    for (const auto& row : extent) {
        if (row.category == Category::kMusic) {
            EXPECT_NEAR(row.bundle_fraction(), 0.724, 0.03);  // 193,491/267,117
        }
        if (row.category == Category::kTv) {
            EXPECT_NEAR(row.bundle_fraction(), 0.158, 0.03);  // 25,990/164,930
        }
        if (row.category == Category::kBooks) {
            // Extension bundles + keyword collections.
            EXPECT_NEAR(row.bundle_fraction(), 0.094 + 0.0127, 0.03);
        }
    }
}

/// Builds an aligned trace list with a fixed seed observation at hour 0.
std::vector<SwarmTrace> traces_with_seed_flags(const Catalog& catalog,
                                               const std::vector<bool>& seeded) {
    std::vector<SwarmTrace> traces;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        SwarmTrace trace;
        trace.swarm_id = catalog[i].id;
        Observation obs;
        obs.swarm_id = catalog[i].id;
        obs.hour = 0;
        obs.seeds = seeded[i] ? 1 : 0;
        trace.observations.push_back(obs);
        traces.push_back(std::move(trace));
    }
    return traces;
}

TEST(CompareAvailability, SeparatesBundledFromPlain) {
    Catalog catalog;
    auto bundle = make_swarm(Category::kBooks, {"a.pdf", "b.pdf"});
    bundle.id = 1;
    bundle.downloads = 4000;
    auto plain = make_swarm(Category::kBooks, {"a.pdf"});
    plain.id = 2;
    plain.downloads = 2000;
    auto plain2 = make_swarm(Category::kBooks, {"b.pdf"});
    plain2.id = 3;
    plain2.downloads = 1000;
    catalog = {bundle, plain, plain2};
    const auto traces = traces_with_seed_flags(catalog, {true, false, true});
    const auto cmp =
        compare_availability(catalog, traces, Category::kBooks, false, 0);
    EXPECT_EQ(cmp.bundled_swarms, 1u);
    EXPECT_EQ(cmp.bundled_seedless, 0u);
    EXPECT_EQ(cmp.plain_swarms, 2u);
    EXPECT_EQ(cmp.plain_seedless, 1u);
    EXPECT_DOUBLE_EQ(cmp.plain_seedless_fraction(), 0.5);
    EXPECT_DOUBLE_EQ(cmp.bundled_mean_downloads, 4000.0);
    EXPECT_DOUBLE_EQ(cmp.plain_mean_downloads, 1500.0);
}

TEST(CompareAvailability, RejectsMisalignedTraces) {
    Catalog catalog{make_swarm(Category::kBooks, {"a.pdf"})};
    std::vector<SwarmTrace> traces;  // empty: misaligned
    EXPECT_THROW(
        (void)compare_availability(catalog, traces, Category::kBooks, false, 0),
        std::invalid_argument);
}

TEST(AnalyzeCollectionSubsets, SupersetCoversSubsets) {
    // Garfield scenario: three collections in one series; only the widest
    // is seeded. The seedless subsets must not count as unavailable.
    Catalog catalog;
    for (std::size_t scope : {1u, 2u, 3u}) {
        auto swarm = make_swarm(Category::kBooks, {"g.pdf"}, "garfield collection");
        swarm.id = scope;
        swarm.series_id = 42;
        swarm.series_scope = scope;
        catalog.push_back(swarm);
    }
    const auto traces = traces_with_seed_flags(catalog, {false, false, true});
    const auto analysis = analyze_collection_subsets(catalog, traces, 0);
    EXPECT_EQ(analysis.collections, 3u);
    EXPECT_EQ(analysis.seedless, 2u);
    EXPECT_EQ(analysis.seedless_without_superset, 0u);
    EXPECT_DOUBLE_EQ(analysis.effective_unavailability(), 0.0);
}

TEST(AnalyzeCollectionSubsets, OrphanSeedlessCollectionCounts) {
    Catalog catalog;
    auto orphan = make_swarm(Category::kBooks, {"o.pdf"}, "orphan collection");
    orphan.id = 1;
    catalog.push_back(orphan);
    const auto traces = traces_with_seed_flags(catalog, {false});
    const auto analysis = analyze_collection_subsets(catalog, traces, 0);
    EXPECT_EQ(analysis.seedless_without_superset, 1u);
    EXPECT_DOUBLE_EQ(analysis.effective_unavailability(), 1.0);
}

TEST(AnalyzeCollectionSubsets, EqualScopeDoesNotCover) {
    // A seeded collection of the same scope is a duplicate, not a superset.
    Catalog catalog;
    for (std::uint64_t id : {1u, 2u}) {
        auto swarm = make_swarm(Category::kBooks, {"g.pdf"}, "dup collection");
        swarm.id = id;
        swarm.series_id = 7;
        swarm.series_scope = 2;
        catalog.push_back(swarm);
    }
    const auto traces = traces_with_seed_flags(catalog, {false, true});
    const auto analysis = analyze_collection_subsets(catalog, traces, 0);
    EXPECT_EQ(analysis.seedless_without_superset, 1u);
}

TEST(BundlingAvailabilityContingency, CountsCells) {
    Catalog catalog;
    auto b1 = make_swarm(Category::kTv, {"e1.avi", "e2.avi"});
    b1.id = 1;
    auto b2 = make_swarm(Category::kTv, {"e1.avi", "e2.avi"});
    b2.id = 2;
    auto s1 = make_swarm(Category::kTv, {"e1.avi"});
    s1.id = 3;
    auto s2 = make_swarm(Category::kTv, {"e2.avi"});
    s2.id = 4;
    catalog = {b1, b2, s1, s2};
    const auto traces = traces_with_seed_flags(catalog, {true, false, false, true});
    const auto table =
        bundling_availability_contingency(catalog, traces, Category::kTv, 0);
    EXPECT_EQ(table.available_bundles, 1u);
    EXPECT_EQ(table.unavailable_bundles, 1u);
    EXPECT_EQ(table.available_singles, 1u);
    EXPECT_EQ(table.unavailable_singles, 1u);
    EXPECT_EQ(table.available(), 2u);
    EXPECT_EQ(table.unavailable(), 2u);
    EXPECT_DOUBLE_EQ(table.bundle_share_of_available(), 0.5);
    EXPECT_DOUBLE_EQ(table.bundle_share_of_unavailable(), 0.5);
}

TEST(BundlingAvailabilityContingency, IgnoresOtherCategories) {
    Catalog catalog;
    auto music = make_swarm(Category::kMusic, {"a.mp3", "b.mp3"});
    music.id = 1;
    catalog = {music};
    const auto traces = traces_with_seed_flags(catalog, {true});
    const auto table =
        bundling_availability_contingency(catalog, traces, Category::kTv, 0);
    EXPECT_EQ(table.available() + table.unavailable(), 0u);
}

TEST(BundlingAvailabilityContingency, EmptyCellsGiveZeroShares) {
    const BundleAvailabilityContingency empty;
    EXPECT_DOUBLE_EQ(empty.bundle_share_of_available(), 0.0);
    EXPECT_DOUBLE_EQ(empty.bundle_share_of_unavailable(), 0.0);
}

TEST(BundlingAvailabilityContingency, SyntheticTvCorrelation) {
    // Bundled TV swarms must dominate the seeded cell (the Friends effect)
    // when pushed through the full generation + monitoring pipeline.
    CatalogConfig config;
    config.music_swarms = 0;
    config.tv_swarms = 3000;
    config.book_swarms = 0;
    config.movie_swarms = 0;
    config.other_swarms = 0;
    config.tv_bundle_fraction = 0.5;
    const auto catalog = generate_catalog(config);
    MonitorConfig monitor_config;
    monitor_config.duration_hours = 24 * 60;
    const auto traces = monitor_catalog(catalog, monitor_config);
    const auto table =
        bundling_availability_contingency(catalog, traces, Category::kTv, 24 * 45);
    EXPECT_GT(table.bundle_share_of_available(),
              table.bundle_share_of_unavailable() + 0.1);
}

TEST(AvailabilityFractions, WindowedPerSwarm) {
    SwarmTrace trace;
    trace.swarm_id = 1;
    for (std::uint32_t h = 0; h < 4; ++h) {
        Observation obs;
        obs.hour = h;
        obs.seeds = (h % 2 == 0) ? 1 : 0;
        trace.observations.push_back(obs);
    }
    const auto fractions = availability_fractions({trace}, 0, 4);
    ASSERT_EQ(fractions.size(), 1u);
    EXPECT_DOUBLE_EQ(fractions.front(), 0.5);
}

TEST(AvailabilityFractions, SkipsSwarmsOutsideWindow) {
    SwarmTrace trace;
    trace.swarm_id = 1;
    Observation obs;
    obs.hour = 100;
    obs.seeds = 1;
    trace.observations.push_back(obs);
    const auto fractions = availability_fractions({trace}, 0, 50);
    EXPECT_TRUE(fractions.empty());
}

}  // namespace
}  // namespace swarmavail::measurement
