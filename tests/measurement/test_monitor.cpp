#include "measurement/monitor.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace swarmavail::measurement {
namespace {

Catalog tiny_catalog() {
    CatalogConfig config;
    config.music_swarms = 200;
    config.tv_swarms = 100;
    config.book_swarms = 100;
    config.movie_swarms = 0;
    config.other_swarms = 0;
    config.seed = 7;
    return generate_catalog(config);
}

TEST(MonitorCatalog, OneTracePerSwarmFullDuration) {
    const auto catalog = tiny_catalog();
    MonitorConfig config;
    config.duration_hours = 24 * 10;
    const auto traces = monitor_catalog(catalog, config);
    ASSERT_EQ(traces.size(), catalog.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        EXPECT_EQ(traces[i].swarm_id, catalog[i].id);
        EXPECT_EQ(traces[i].observations.size(), config.duration_hours);
    }
}

TEST(MonitorCatalog, ObservationsAreHourly) {
    const auto catalog = tiny_catalog();
    MonitorConfig config;
    config.duration_hours = 48;
    const auto traces = monitor_catalog(catalog, config);
    for (const auto& trace : traces) {
        for (std::size_t h = 0; h < trace.observations.size(); ++h) {
            EXPECT_EQ(trace.observations[h].hour, h);
            EXPECT_EQ(trace.observations[h].swarm_id, trace.swarm_id);
        }
    }
}

TEST(MonitorCatalog, SwarmsBeginSeeded) {
    const auto catalog = tiny_catalog();
    MonitorConfig config;
    config.duration_hours = 24;
    const auto traces = monitor_catalog(catalog, config);
    std::size_t seeded_at_start = 0;
    for (const auto& trace : traces) {
        if (trace.observations.front().seeds > 0) {
            ++seeded_at_start;
        }
    }
    // Every swarm starts in the seeded state (hour 0 falls in the first
    // uptime interval unless it is shorter than an hour).
    EXPECT_GT(seeded_at_start, traces.size() * 7 / 10);
}

TEST(MonitorCatalog, AvailabilityDecaysWithTraceAge) {
    // The downtime-growth model makes late windows less available than the
    // first month on average (the Figure 1 contrast).
    const auto catalog = tiny_catalog();
    MonitorConfig config;
    config.duration_hours = 24 * 150;
    const auto traces = monitor_catalog(catalog, config);
    StreamingStats first_month;
    StreamingStats late_window;
    for (const auto& trace : traces) {
        first_month.add(seed_availability(trace, 0, 24 * 30));
        late_window.add(seed_availability(trace, 24 * 120, 24 * 150));
    }
    EXPECT_GT(first_month.mean(), late_window.mean() + 0.05);
}

TEST(MonitorCatalog, DeterministicForFixedSeed) {
    const auto catalog = tiny_catalog();
    MonitorConfig config;
    config.duration_hours = 100;
    const auto a = monitor_catalog(catalog, config);
    const auto b = monitor_catalog(catalog, config);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t h = 0; h < a[i].observations.size(); ++h) {
            EXPECT_EQ(a[i].observations[h].seeds, b[i].observations[h].seeds);
        }
    }
}

TEST(MonitorCatalog, RejectsInvalidConfig) {
    const auto catalog = tiny_catalog();
    MonitorConfig config;
    config.duration_hours = 0;
    EXPECT_THROW((void)monitor_catalog(catalog, config), std::invalid_argument);
    config = MonitorConfig{};
    config.downtime_growth_per_month = 0.5;
    EXPECT_THROW((void)monitor_catalog(catalog, config), std::invalid_argument);
}

TEST(SeedAvailability, CountsWindowOnly) {
    SwarmTrace trace;
    trace.swarm_id = 1;
    for (std::uint32_t h = 0; h < 10; ++h) {
        Observation obs;
        obs.swarm_id = 1;
        obs.hour = h;
        obs.seeds = h < 5 ? 1 : 0;
        trace.observations.push_back(obs);
    }
    EXPECT_DOUBLE_EQ(seed_availability(trace, 0, 10), 0.5);
    EXPECT_DOUBLE_EQ(seed_availability(trace, 0, 5), 1.0);
    EXPECT_DOUBLE_EQ(seed_availability(trace, 5, 10), 0.0);
    EXPECT_DOUBLE_EQ(seed_availability(trace, 20, 30), 0.0);
}

TEST(SeedAvailability, RejectsInvertedWindow) {
    SwarmTrace trace;
    EXPECT_THROW((void)seed_availability(trace, 5, 2), std::invalid_argument);
}

}  // namespace
}  // namespace swarmavail::measurement
